"""Unit + property tests for the PIM engines: register bank, ALU
semantics, HMC ISA backend, HIVE sequencer/interlock, HIPE predication."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import HmcConfig, hipe_logic_config, hive_logic_config
from repro.cpu.isa import AluFunc, PimInstruction, PimOp, Uop, UopClass, pim
from repro.memory.hmc import Hmc
from repro.memory.image import MemoryImage
from repro.pim.hive import HiveBackend, HiveEngine
from repro.pim.hipe import HipeBackend, HipeEngine
from repro.pim.hmc_isa import HmcIsaBackend
from repro.pim.ops import apply_alu, apply_compound, bits_to_mask, mask_to_bits
from repro.pim.register_bank import PimRegisterBank


def make_cube():
    image = MemoryImage(1 << 24)
    hmc = Hmc(HmcConfig())
    return hmc, image


class TestPimOps:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=64),
           st.integers(-500, 500), st.integers(-500, 500))
    @settings(max_examples=60)
    def test_cmp_range_matches_numpy(self, values, lo_raw, hi_raw):
        lo, hi = min(lo_raw, hi_raw), max(lo_raw, hi_raw)
        arr = np.array(values, dtype=np.int32)
        got = apply_alu(AluFunc.CMP_RANGE, arr, imm_lo=lo, imm_hi=hi)
        expected = ((arr >= lo) & (arr <= hi)).astype(np.int32)
        assert np.array_equal(got, expected)

    def test_all_compare_functions(self):
        arr = np.array([1, 5, 9], dtype=np.int32)
        assert apply_alu(AluFunc.CMP_GE, arr, imm_lo=5).tolist() == [0, 1, 1]
        assert apply_alu(AluFunc.CMP_GT, arr, imm_lo=5).tolist() == [0, 0, 1]
        assert apply_alu(AluFunc.CMP_LE, arr, imm_lo=5).tolist() == [1, 1, 0]
        assert apply_alu(AluFunc.CMP_LT, arr, imm_lo=5).tolist() == [1, 0, 0]
        assert apply_alu(AluFunc.CMP_EQ, arr, imm_lo=5).tolist() == [0, 1, 0]

    def test_logic_and_arith(self):
        a = np.array([1, 0, 1], dtype=np.int32)
        b = np.array([1, 1, 0], dtype=np.int32)
        assert apply_alu(AluFunc.AND, a, b).tolist() == [1, 0, 0]
        assert apply_alu(AluFunc.OR, a, b).tolist() == [1, 1, 1]
        assert apply_alu(AluFunc.ADD, a, b).tolist() == [2, 1, 1]
        assert apply_alu(AluFunc.MUL, a, b).tolist() == [1, 0, 0]

    def test_compound_tuple_predicate(self):
        # Two 16 B tuples: int32 fields at offsets 0 and 4.
        tuples = np.zeros(8, dtype=np.int32)
        tuples[0], tuples[1] = 10, 3  # tuple 0: matches both terms
        tuples[4], tuples[5] = 10, 9  # tuple 1: fails second term
        terms = ((0, AluFunc.CMP_GE, 5, 0), (4, AluFunc.CMP_LT, 5, 0))
        raw = tuples.view(np.uint8)
        result = apply_compound(raw, stride=16, terms=terms)
        assert result.tolist() == [1, 0]

    def test_compound_skips_out_of_piece_terms(self):
        raw = np.zeros(8, dtype=np.uint8)
        terms = ((64, AluFunc.CMP_GE, 5, 0),)  # offset beyond the piece
        assert apply_compound(raw, stride=8, terms=terms).tolist() == [1]

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_mask_bits_roundtrip(self, flags):
        lanes = np.array(flags, dtype=np.int32)
        packed = mask_to_bits(lanes)
        assert np.array_equal(bits_to_mask(packed, len(flags)),
                              np.array(flags, dtype=bool))


class TestRegisterBank:
    def setup_method(self):
        self.bank = PimRegisterBank(hive_logic_config())

    def test_dimensions(self):
        assert len(self.bank) == 36
        assert self.bank[0].nbytes == 256

    def test_bounds_checked(self):
        with pytest.raises(IndexError):
            self.bank[36]

    def test_write_sets_flags_and_ready(self):
        values = np.array([0, 7, 0, -2], dtype=np.int32)
        register = self.bank.write(3, values, lane_bytes=4, ready=99)
        assert register.ready == 99
        assert register.lane_match[:4].tolist() == [False, True, False, True]

    def test_short_write_zero_fills(self):
        self.bank.write(0, np.full(64, 1, dtype=np.int32), 4, 10)
        self.bank.write(0, np.array([5], dtype=np.int32), 4, 20)
        assert self.bank[0].lanes(4)[1] == 0

    def test_accounting(self):
        self.bank.read(1)
        self.bank.write(2, np.array([1], dtype=np.int32), 4, 0)
        assert self.bank.stats.get("reads") == 1
        assert self.bank.stats.get("writes") == 1


class TestHmcIsaBackend:
    def setup_method(self):
        self.hmc, self.image = make_cube()
        self.backend = HmcIsaBackend(self.hmc, self.image)

    def test_loadcmp_computes_mask(self):
        values = np.array([1, 10, 3, 8], dtype=np.int32)
        alloc = self.image.allocate_array("col", values)
        inst = PimInstruction(PimOp.HMC_LOADCMP, address=alloc.base, size=16,
                              func=AluFunc.CMP_GE, imm_lo=5, returns_value=True)
        done, release = self.backend.submit(pim(1, inst), 0)
        assert done > 0
        assert release == done  # the controller window holds the round trip
        bits = np.unpackbits(self.backend.computed_masks[0], count=4,
                             bitorder="little")
        assert bits.tolist() == [0, 1, 0, 1]

    def test_update_writes_back(self):
        values = np.array([1, 2], dtype=np.int32)
        alloc = self.image.allocate_array("col", values)
        inst = PimInstruction(PimOp.HMC_UPDATE, address=alloc.base, size=8,
                              func=AluFunc.ADD, imm_lo=10)
        self.backend.submit(pim(1, inst), 0)
        assert self.image.view("col", np.int32).tolist() == [11, 12]

    def test_rejects_engine_ops(self):
        with pytest.raises(ValueError):
            self.backend.submit(pim(1, PimInstruction(PimOp.LOCK)), 0)


class TestHiveEngine:
    def setup_method(self):
        self.hmc, self.image = make_cube()
        self.engine = HiveEngine(hive_logic_config(), self.hmc, self.image)

    def test_load_reads_memory(self):
        values = np.arange(64, dtype=np.int32)
        alloc = self.image.allocate_array("col", values)
        done = self.engine.execute(
            PimInstruction(PimOp.PIM_LOAD, address=alloc.base, size=256, dst_reg=0), 0
        )
        assert done > 50  # paid a DRAM access
        assert np.array_equal(self.engine.registers[0].lanes(4), values)

    def test_interlock_load_does_not_block_sequencer(self):
        values = np.arange(64, dtype=np.int32)
        alloc = self.image.allocate_array("col", values)
        self.engine.execute(
            PimInstruction(PimOp.PIM_LOAD, address=alloc.base, size=256, dst_reg=0), 0
        )
        # An independent instruction dispatches long before the load lands.
        done = self.engine.execute(PimInstruction(PimOp.LOCK), 0)
        assert done < 50

    def test_dependent_alu_waits_for_load(self):
        values = np.arange(64, dtype=np.int32)
        alloc = self.image.allocate_array("col", values)
        load_done = self.engine.execute(
            PimInstruction(PimOp.PIM_LOAD, address=alloc.base, size=256, dst_reg=0), 0
        )
        cmp_done = self.engine.execute(
            PimInstruction(PimOp.PIM_ALU, size=256, src_regs=(0,), dst_reg=1,
                           func=AluFunc.CMP_GE, imm_lo=32), 0
        )
        assert cmp_done > load_done
        assert self.engine.registers[1].lanes(4)[:64].sum() == 32

    def test_store_roundtrip_and_invalidation(self):
        invalidated = []
        engine = HiveEngine(hive_logic_config(), self.hmc, self.image,
                            invalidate_range=lambda a, n: invalidated.append((a, n)))
        buf = self.image.allocate("buf", 256)
        engine.registers.write(2, np.arange(64, dtype=np.int32), 4, 0)
        engine.execute(
            PimInstruction(PimOp.PIM_STORE, address=buf.base, size=256,
                           src_regs=(2,)), 0
        )
        assert np.array_equal(self.image.view("buf", np.int32),
                              np.arange(64, dtype=np.int32))
        assert invalidated == [(buf.base, 256)]

    def test_lock_serialises_until_prior_unlock_dispatch(self):
        first_lock = self.engine.execute(PimInstruction(PimOp.LOCK), 0)
        self.engine.execute(PimInstruction(PimOp.UNLOCK), 0)
        second_lock = self.engine.execute(PimInstruction(PimOp.LOCK), 0)
        assert second_lock > first_lock

    def test_unlock_status_waits_for_block(self):
        values = np.arange(64, dtype=np.int32)
        alloc = self.image.allocate_array("col", values)
        self.engine.execute(PimInstruction(PimOp.LOCK), 0)
        load_done = self.engine.execute(
            PimInstruction(PimOp.PIM_LOAD, address=alloc.base, size=256, dst_reg=0), 0
        )
        unlock_done = self.engine.execute(
            PimInstruction(PimOp.UNLOCK, returns_value=True), 0
        )
        assert unlock_done >= load_done

    def test_pack_unpack_roundtrip(self):
        flags = np.array([1, 0, 1, 1] * 16, dtype=np.int32)
        self.engine.registers.write(0, flags, 4, 0)
        self.engine.execute(
            PimInstruction(PimOp.PACK_MASK, size=64, src_regs=(0,), dst_reg=35,
                           imm_lo=0), 0
        )
        self.engine.execute(
            PimInstruction(PimOp.UNPACK_MASK, size=256, src_regs=(35,), dst_reg=1,
                           imm_lo=0), 0
        )
        assert np.array_equal(self.engine.registers[1].lanes(4)[:64],
                              (flags != 0).astype(np.int32))

    def test_pack_zeroes_partial_byte_tail(self):
        self.engine.registers.write(0, np.ones(4, dtype=np.int32), 4, 0)
        # Dirty the accumulator first.
        self.engine.registers.write(35, np.full(64, -1, dtype=np.int32), 4, 0)
        self.engine.execute(
            PimInstruction(PimOp.PACK_MASK, size=4, src_regs=(0,), dst_reg=35,
                           imm_lo=0), 0
        )
        assert self.engine.registers[35].value[0] == 0b00001111

    def test_predication_refused_without_support(self):
        with pytest.raises(ValueError):
            self.engine.execute(
                PimInstruction(PimOp.PIM_LOAD, address=0x100, size=256,
                               dst_reg=0, pred_reg=1), 0
            )

    def test_size_limit_enforced(self):
        with pytest.raises(ValueError):
            self.engine.execute(
                PimInstruction(PimOp.PIM_LOAD, address=0x100, size=512, dst_reg=0), 0
            )


class TestHipeEngine:
    def setup_method(self):
        self.hmc, self.image = make_cube()
        self.engine = HipeEngine(hipe_logic_config(), self.hmc, self.image)

    def _load_and_compare(self, values, threshold):
        alloc = self.image.allocate_array("col", np.asarray(values, dtype=np.int32))
        self.engine.execute(
            PimInstruction(PimOp.PIM_LOAD, address=alloc.base,
                           size=len(values) * 4, dst_reg=0), 0
        )
        self.engine.execute(
            PimInstruction(PimOp.PIM_ALU, size=len(values) * 4, src_regs=(0,),
                           dst_reg=1, func=AluFunc.CMP_GE, imm_lo=threshold), 0
        )

    def test_predicated_alu_masks_lanes(self):
        self._load_and_compare([1, 10, 2, 20] * 16, threshold=5)
        # Predicated compare on reg 1: lanes where reg1==0 must yield 0.
        self.engine.registers.write(2, np.full(64, 7, dtype=np.int32), 4, 0)
        self.engine.execute(
            PimInstruction(PimOp.PIM_ALU, size=256, src_regs=(2,), dst_reg=3,
                           func=AluFunc.CMP_GE, imm_lo=0, pred_reg=1), 0
        )
        result = self.engine.registers[3].lanes(4)
        expected = np.array([0, 1, 0, 1] * 16, dtype=np.int32)
        assert np.array_equal(result[:64], expected)

    def test_fully_squashed_load_skips_dram(self):
        self._load_and_compare([1, 2, 3, 4] * 16, threshold=100)  # no matches
        before = sum(v.bytes_read for v in self.hmc.vaults)
        target = self.image.allocate("col2", 256)
        done = self.engine.execute(
            PimInstruction(PimOp.PIM_LOAD, address=target.base, size=256,
                           dst_reg=2, pred_reg=1), 0
        )
        after = sum(v.bytes_read for v in self.hmc.vaults)
        assert after == before  # no DRAM access at all
        assert self.engine.stats.get("squashed_loads") == 1
        assert self.engine.stats.get("dram_bytes_skipped") == 256
        assert done > 0

    def test_partially_matching_load_reads_full_region_by_default(self):
        self._load_and_compare([1, 10, 2, 20] * 16, threshold=5)
        target = self.image.allocate("col2", 256)
        before = sum(v.bytes_read for v in self.hmc.vaults)
        self.engine.execute(
            PimInstruction(PimOp.PIM_LOAD, address=target.base, size=256,
                           dst_reg=2, pred_reg=1), 0
        )
        read = sum(v.bytes_read for v in self.hmc.vaults) - before
        assert read == 256  # paper mode: region squash only

    def test_partial_load_extension_reads_fewer_bytes(self):
        from dataclasses import replace

        config = replace(hipe_logic_config(), partial_predicated_loads=True)
        engine = HipeEngine(config, self.hmc, self.image)
        alloc = self.image.allocate_array(
            "c1", np.array([1, 10, 2, 20] * 16, dtype=np.int32))
        engine.execute(PimInstruction(PimOp.PIM_LOAD, address=alloc.base,
                                      size=256, dst_reg=0), 0)
        engine.execute(PimInstruction(PimOp.PIM_ALU, size=256, src_regs=(0,),
                                      dst_reg=1, func=AluFunc.CMP_GE, imm_lo=5), 0)
        target = self.image.allocate("c2", 256)
        before = sum(v.bytes_read for v in self.hmc.vaults)
        engine.execute(PimInstruction(PimOp.PIM_LOAD, address=target.base,
                                      size=256, dst_reg=2, pred_reg=1), 0)
        read = sum(v.bytes_read for v in self.hmc.vaults) - before
        assert read == 128  # 32 of 64 lanes matched

    def test_pred_expect_false_inverts(self):
        self._load_and_compare([0, 10] * 32, threshold=5)
        self.engine.registers.write(2, np.full(64, 3, dtype=np.int32), 4, 0)
        self.engine.execute(
            PimInstruction(PimOp.PIM_ALU, size=256, src_regs=(2,), dst_reg=3,
                           func=AluFunc.CMP_GE, imm_lo=0, pred_reg=1,
                           pred_expect=False), 0
        )
        result = self.engine.registers[3].lanes(4)[:64]
        assert np.array_equal(result, np.array([1, 0] * 32, dtype=np.int32))

    def test_requires_predication_config(self):
        with pytest.raises(ValueError):
            HipeEngine(hive_logic_config(), self.hmc, self.image)

    @given(st.lists(st.integers(0, 30), min_size=8, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_predicated_conjunction_equals_reference(self, values):
        """HIPE's predicated cmp chain == plain numpy conjunction."""
        hmc, image = make_cube()
        engine = HipeEngine(hipe_logic_config(), hmc, image)
        col1 = np.array(values, dtype=np.int32)
        col2 = (col1 * 7 + 3) % 31
        a1 = image.allocate_array("c1", col1)
        a2 = image.allocate_array("c2", col2.astype(np.int32))
        n = len(values)
        engine.execute(PimInstruction(PimOp.PIM_LOAD, address=a1.base,
                                      size=4 * n, dst_reg=0), 0)
        engine.execute(PimInstruction(PimOp.PIM_ALU, size=4 * n, src_regs=(0,),
                                      dst_reg=0, func=AluFunc.CMP_GE, imm_lo=10), 0)
        engine.execute(PimInstruction(PimOp.PIM_LOAD, address=a2.base,
                                      size=4 * n, dst_reg=1, pred_reg=0), 0)
        engine.execute(PimInstruction(PimOp.PIM_ALU, size=4 * n, src_regs=(1,),
                                      dst_reg=1, func=AluFunc.CMP_LT, imm_lo=15,
                                      pred_reg=0), 0)
        got = engine.registers[1].lanes(4)[:n] != 0
        expected = (col1 >= 10) & (col2 < 15)
        assert np.array_equal(got, expected)


class TestBackends:
    def test_hive_backend_posted_vs_status(self):
        hmc, image = make_cube()
        engine = HiveEngine(hive_logic_config(), hmc, image)
        backend = HiveBackend(engine, hmc)
        posted, posted_release = backend.submit(
            pim(1, PimInstruction(PimOp.LOCK)), 0)
        status, status_release = backend.submit(
            pim(2, PimInstruction(PimOp.UNLOCK, returns_value=True), dst=1), 0)
        assert posted < status  # status waits for the response packet
        # The posted instruction's buffer entry frees only once the
        # in-order sequencer has consumed it (engine-side backpressure).
        assert posted_release >= posted
        assert status_release >= status

    def test_hipe_backend_window_from_buffer(self):
        hmc, image = make_cube()
        engine = HipeEngine(hipe_logic_config(), hmc, image)
        backend = HipeBackend(engine, hmc)
        assert backend.max_outstanding == hipe_logic_config().instruction_buffer_entries

    def test_backend_rejects_bare_uop(self):
        hmc, image = make_cube()
        backend = HiveBackend(HiveEngine(hive_logic_config(), hmc, image), hmc)
        with pytest.raises(ValueError):
            backend.submit(Uop(UopClass.PIM, pc=1), 0)

"""Tests for the query-plan IR: schema-driven datagen, plan nodes, the
numpy interpreter, and cross-backend lowering equivalence."""

import hashlib

import numpy as np
import pytest

from repro.codegen import hipe as hipe_cg
from repro.codegen import hive as hive_cg
from repro.codegen import hmc as hmc_cg
from repro.codegen import x86 as x86_cg
from repro.codegen.aggregate import aggregate_slots, group_keys
from repro.codegen.base import ScanConfig
from repro.cpu.isa import AluFunc
from repro.db.datagen import (
    LINEITEM_Q1_SCHEMA,
    LINEITEM_Q6_SCHEMA,
    ColumnSpec,
    TableSchema,
    generate_lineitem,
    generate_table,
)
from repro.db.plan import (
    Aggregate,
    AggSpec,
    Filter,
    Predicate,
    Project,
    QueryPlan,
    Scan,
)
from repro.db.query6 import (
    Q6_PREDICATES,
    q6_revenue_plan,
    q6_select_plan,
    reference_mask,
    reference_revenue,
)
from repro.db.scan import execute_plan
from repro.db.workloads import q1_style_plan, selectivity_scan_plan
from repro.sim.runner import build_workload, run_scan
from repro.sim.machine import build_machine

ROWS = 1024

from repro.experiments.common import BEST_CONFIGS

_CODEGENS = {"x86": x86_cg, "hmc": hmc_cg, "hive": hive_cg, "hipe": hipe_cg}
_BEST = dict(BEST_CONFIGS)


class TestSchemaDatagen:
    def test_generate_lineitem_byte_identical_to_seed_generator(self):
        # Regression pin: the schema-driven generator must reproduce the
        # pre-IR generator bit for bit (cached Q6 results depend on it).
        data = generate_lineitem(1000, seed=1994)
        fingerprints = {
            "l_shipdate": "b82babf593764d2a",
            "l_discount": "4ebca57750c8227f",
            "l_quantity": "224eb2e6faf8956c",
            "l_extendedprice": "b2d68bb4a7254fa3",
        }
        for column, expected in fingerprints.items():
            digest = hashlib.sha256(
                np.ascontiguousarray(data[column]).tobytes()
            ).hexdigest()[:16]
            assert digest == expected, column

    def test_extended_schema_preserves_prefix_columns(self):
        q6 = generate_lineitem(500, seed=11)
        q1 = generate_table(LINEITEM_Q1_SCHEMA, 500, seed=11)
        for column in q6.column_names():
            assert np.array_equal(q6[column], q1[column]), column

    def test_categorical_domains(self):
        data = generate_table(LINEITEM_Q1_SCHEMA, 2000, seed=5)
        assert set(np.unique(data["l_returnflag"])) <= {0, 1, 2}
        assert set(np.unique(data["l_linestatus"])) <= {0, 1}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ColumnSpec("c", "uniform", lo=5, hi=2)
        with pytest.raises(ValueError):
            ColumnSpec("c", "categorical", cardinality=0)
        with pytest.raises(ValueError):
            ColumnSpec("c", "price")  # no base column
        with pytest.raises(ValueError):
            ColumnSpec("c", "gaussian")

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            TableSchema("t", (ColumnSpec("a"), ColumnSpec("a")))
        with pytest.raises(ValueError):
            TableSchema("t", (ColumnSpec("p", "price", base="missing"),))
        with pytest.raises(ValueError):
            # a price column must follow the base it derives from
            TableSchema("t", (
                ColumnSpec("p", "price", base="q"),
                ColumnSpec("q", "uniform", lo=1, hi=50),
            ))

    def test_schema_roundtrip(self):
        restored = TableSchema.from_dict(LINEITEM_Q1_SCHEMA.to_dict())
        assert restored == LINEITEM_Q1_SCHEMA

    def test_domain(self):
        assert LINEITEM_Q1_SCHEMA.spec("l_returnflag").domain == (0, 2)
        assert LINEITEM_Q6_SCHEMA.spec("l_discount").domain == (0, 10)


class TestPlanNodes:
    def test_plan_must_start_with_scan(self):
        with pytest.raises(ValueError):
            QueryPlan("bad", (Filter(Q6_PREDICATES),))

    def test_operator_order_enforced(self):
        with pytest.raises(ValueError):
            QueryPlan("bad", (
                Scan(LINEITEM_Q6_SCHEMA),
                Aggregate((AggSpec("count"),)),
                Filter(Q6_PREDICATES),
            ))

    def test_duplicate_operator_rejected(self):
        with pytest.raises(ValueError):
            QueryPlan("bad", (
                Scan(LINEITEM_Q6_SCHEMA),
                Filter(Q6_PREDICATES),
                Filter(Q6_PREDICATES),
            ))

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError):
            QueryPlan("bad", (
                Scan(LINEITEM_Q6_SCHEMA),
                Filter((Predicate("no_such", AluFunc.CMP_LT, 3),)),
            ))

    def test_aggspec_validation(self):
        with pytest.raises(ValueError):
            AggSpec("count", column="l_quantity")
        with pytest.raises(ValueError):
            AggSpec("sum")  # needs a column
        with pytest.raises(ValueError):
            AggSpec("min", column="l_quantity", times="l_discount")
        with pytest.raises(ValueError):
            AggSpec("median", column="l_quantity")

    def test_labels(self):
        assert AggSpec("count").label() == "count(*)"
        assert AggSpec("sum", "a", times="b").label() == "sum(a*b)"
        assert AggSpec("min", "a").label() == "min(a)"

    def test_digest_stable_and_distinct(self):
        assert q6_select_plan().digest() == q6_select_plan().digest()
        digests = {
            q6_select_plan().digest(),
            q6_revenue_plan().digest(),
            q1_style_plan().digest(),
            selectivity_scan_plan(0.1).digest(),
            selectivity_scan_plan(0.2).digest(),
        }
        assert len(digests) == 5

    def test_serialisation_roundtrip(self):
        for plan in (q6_revenue_plan(), q1_style_plan(),
                     selectivity_scan_plan(0.25)):
            restored = QueryPlan.from_dict(plan.to_dict())
            assert restored == plan
            assert restored.digest() == plan.digest()

    def test_accessors(self):
        plan = q1_style_plan()
        assert plan.table.name == "lineitem_q1"
        assert len(plan.predicates) == 1
        assert plan.aggregate.group_by == ("l_returnflag", "l_linestatus")
        assert plan.group_domains() == [
            ("l_returnflag", (0, 2)), ("l_linestatus", (0, 1))
        ]
        assert "l_discount" in plan.referenced_columns()

    def test_projection(self):
        plan = QueryPlan("proj", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter(Q6_PREDICATES),
            Project(("l_extendedprice",)),
        ))
        assert plan.projection.columns == ("l_extendedprice",)


class TestInterpreter:
    def test_q6_select_matches_reference(self):
        data = generate_lineitem(ROWS, seed=3)
        result = execute_plan(q6_select_plan(), data)
        assert np.array_equal(
            np.unpackbits(result.bitmask, count=ROWS, bitorder="little").astype(bool),
            reference_mask(data),
        )
        assert result.aggregates is None

    def test_q6_revenue_matches_reference(self):
        data = generate_lineitem(ROWS, seed=3)
        result = execute_plan(q6_revenue_plan(), data)
        assert result.aggregates[()]["sum(l_extendedprice*l_discount)"] == (
            reference_revenue(data)
        )

    def test_grouped_aggregation_partitions(self):
        plan = q1_style_plan()
        data = generate_table(plan.table, ROWS, seed=3)
        result = execute_plan(plan, data)
        # Group counts must sum to the match count.
        total = sum(v["count(*)"] for v in result.aggregates.values())
        assert total == result.match_count
        # Manual check of one group.
        mask = plan.predicates[0].evaluate(data["l_shipdate"])
        group = mask & (data["l_returnflag"] == 1) & (data["l_linestatus"] == 0)
        assert result.aggregates[(1, 0)]["sum(l_quantity)"] == (
            int(data["l_quantity"][group].astype(np.int64).sum())
        )

    def test_min_max(self):
        plan = QueryPlan("mm", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter((Predicate("l_discount", AluFunc.CMP_EQ, 5),)),
            Aggregate((AggSpec("min", "l_quantity"), AggSpec("max", "l_quantity"))),
        ))
        data = generate_lineitem(ROWS, seed=9)
        result = execute_plan(plan, data)
        picked = data["l_quantity"][data["l_discount"] == 5]
        assert result.aggregates[()]["min(l_quantity)"] == int(picked.min())
        assert result.aggregates[()]["max(l_quantity)"] == int(picked.max())

    def test_empty_selection_has_no_groups(self):
        plan = QueryPlan("none", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter((Predicate("l_quantity", AluFunc.CMP_GT, 999),)),
            Aggregate((AggSpec("count"),)),
        ))
        data = generate_lineitem(ROWS, seed=9)
        result = execute_plan(plan, data)
        assert result.aggregates == {}

    def test_selectivity_scan_hits_target(self):
        data = generate_lineitem(20_000, seed=13)
        for target in (0.05, 0.25, 0.75):
            result = execute_plan(selectivity_scan_plan(target), data)
            assert result.selectivity == pytest.approx(target, abs=0.02)


class TestCrossBackendEquivalence:
    """Every backend's lowering must reproduce the interpreter's answer —
    the acceptance bar of the plan IR."""

    @pytest.mark.parametrize("arch", ["x86", "hmc", "hive", "hipe"])
    @pytest.mark.parametrize("make_plan", [
        q6_revenue_plan, q1_style_plan, lambda: selectivity_scan_plan(0.05),
    ])
    def test_aggregates_match_interpreter(self, arch, make_plan):
        plan = make_plan()
        data = generate_table(plan.table, ROWS, seed=1994)
        result = run_scan(arch, _BEST[arch], rows=ROWS, data=data, plan=plan)
        reference = execute_plan(plan, data)
        assert result.verified is True, (arch, plan.name)
        assert result.aggregates == reference.aggregates, (arch, plan.name)

    @pytest.mark.parametrize("arch", ["hive", "hipe"])
    def test_engine_partial_sums_in_memory(self, arch):
        # The logic-layer engines physically compute the reductions: the
        # per-lane partial sums they stored must reduce to the answer.
        plan = q1_style_plan()
        data = generate_table(plan.table, ROWS, seed=7)
        machine = build_machine(arch)
        workload = build_workload(machine, data, "dsm", plan=plan)
        machine.run(_CODEGENS[arch].generate_plan(workload, _BEST[arch]))
        reference = execute_plan(plan, data)
        slots = aggregate_slots(workload)
        aggs = plan.aggregate.aggs
        produced = {}
        for index, (key, a) in enumerate(slots):
            raw = machine.image.read(
                workload.buffers.aggregate_address(index), 256)
            produced.setdefault(key, {})[aggs[a].label()] = (
                int(raw.view(np.int32).astype(np.int64).sum())
            )
        for key, values in reference.aggregates.items():
            assert produced[key] == values, (arch, key)

    def test_hipe_squashes_dead_chunks_in_aggregate(self):
        # At Q6's ~2 % selectivity most chunks carry no matches: HIPE's
        # predicated aggregate loads must skip them before DRAM.
        plan = q6_revenue_plan()
        data = generate_lineitem(ROWS, seed=1994)
        hipe = run_scan("hipe", _BEST["hipe"], rows=ROWS, data=data, plan=plan)
        hive = run_scan("hive", _BEST["hive"], rows=ROWS, data=data, plan=plan)
        assert hipe.stats.get("hipe.hipe.squashed_loads", 0) > 0
        assert hipe.energy.dram_total_pj < hive.energy.dram_total_pj

    @pytest.mark.parametrize("arch", ["x86", "hmc", "hive", "hipe"])
    def test_small_op_sizes_verify(self, arch):
        # 16 B ops mean 4-lane chunks and sub-byte mask offsets — the
        # hardest alignment case for the aggregate lowering.
        plan = selectivity_scan_plan(0.25)
        data = generate_table(plan.table, 200, seed=21)
        result = run_scan(arch, ScanConfig("dsm", "column", 16, unroll=2),
                          rows=200, data=data, plan=plan)
        assert result.verified is True
        assert result.aggregates == execute_plan(plan, data).aggregates

    @pytest.mark.parametrize("arch", ["hive", "hipe"])
    def test_minmax_falls_back_to_core(self, arch):
        plan = QueryPlan("mm", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter(Q6_PREDICATES),
            Aggregate((AggSpec("min", "l_extendedprice"),
                       AggSpec("max", "l_extendedprice"),
                       AggSpec("count"))),
        ))
        data = generate_lineitem(ROWS, seed=17)
        result = run_scan(arch, _BEST[arch], rows=ROWS, data=data, plan=plan)
        assert result.verified is True
        assert result.aggregates == execute_plan(plan, data).aggregates

    @pytest.mark.parametrize("arch", ["x86", "hmc", "hive", "hipe"])
    def test_multiple_product_aggregates(self, arch):
        # Two sum(a*b) reductions need distinct product registers in the
        # engine lowering (regression: a shared register let one
        # aggregate accumulate the other's product).
        plan = QueryPlan("two_products", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter(Q6_PREDICATES),
            Aggregate((
                AggSpec("sum", "l_quantity", times="l_discount"),
                AggSpec("sum", "l_extendedprice", times="l_discount"),
            )),
        ))
        data = generate_lineitem(ROWS, seed=29)
        result = run_scan(arch, _BEST[arch], rows=ROWS, data=data, plan=plan)
        assert result.verified is True, arch
        assert result.aggregates == execute_plan(plan, data).aggregates

    @pytest.mark.parametrize("arch", ["x86", "hmc", "hive", "hipe"])
    def test_group_key_doubling_as_aggregate_input(self, arch):
        # A column serving as both group-by key and aggregate input must
        # be loaded once and feed both roles (regression: the engine
        # lowering resolved it to the key register only, leaving the
        # value register stale).
        plan = QueryPlan("key_is_value", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter((Predicate("l_quantity", AluFunc.CMP_LT, 24),)),
            Aggregate(
                (AggSpec("sum", "l_discount"), AggSpec("count")),
                group_by=("l_discount",),
            ),
        ))
        data = generate_lineitem(ROWS, seed=23)
        result = run_scan(arch, _BEST[arch], rows=ROWS, data=data, plan=plan)
        assert result.verified is True, arch
        assert result.aggregates == execute_plan(plan, data).aggregates

    def test_overflow_risk_falls_back_to_core(self):
        # Paper-scale sums would wrap the engines' int32 accumulator
        # lanes; the lowering must detect the bound and emit the
        # core-side reduction instead of failing verification.
        from repro.codegen.aggregate import engine_sums_overflow
        from repro.cpu.isa import UopClass

        plan = q1_style_plan()
        rows = 2_000_000  # ~31k chunks x 110k max price > 2^31
        machine = build_machine("hive")
        data = generate_table(plan.table, 256, seed=1)
        workload = build_workload(machine, data, "dsm", plan=plan)
        workload.data.rows = rows  # bound check only reads the row count
        config = ScanConfig("dsm", "column", 256, unroll=32)
        assert engine_sums_overflow(workload, config)
        workload.data.rows = 256
        assert not engine_sums_overflow(workload, config)

    def test_q6_select_plan_is_byte_identical_to_default(self):
        # Running fig3's Q6 plan explicitly must equal the plan-less
        # default in cycles, uops, energy and stats.
        data = generate_lineitem(ROWS, seed=1994)
        explicit = run_scan("hive", _BEST["hive"], rows=ROWS, data=data,
                            plan=q6_select_plan())
        default = run_scan("hive", _BEST["hive"], rows=ROWS, data=data)
        assert explicit.cycles == default.cycles
        assert explicit.uops == default.uops
        assert explicit.stats == default.stats
        assert explicit.energy.to_dict() == default.energy.to_dict()


class TestLoweringStructure:
    def test_group_keys_cartesian(self):
        plan = q1_style_plan()
        data = generate_table(plan.table, 256, seed=1)
        machine = build_machine("x86")
        workload = build_workload(machine, data, "dsm", plan=plan)
        assert len(group_keys(workload)) == 6  # 3 flags x 2 statuses
        assert len(aggregate_slots(workload)) == 24  # x 4 aggregates

    def test_oversized_group_by_rejected(self):
        plan = QueryPlan("wide", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter(Q6_PREDICATES),
            Aggregate((AggSpec("count"),), group_by=("l_shipdate",)),
        ))
        data = generate_lineitem(256, seed=1)
        machine = build_machine("x86")
        workload = build_workload(machine, data, "dsm", plan=plan)
        with pytest.raises(ValueError):
            list(x86_cg.generate_plan(workload, _BEST["x86"]))

    def test_plan_without_filter_rejected_by_lowering(self):
        plan = QueryPlan("nofilter", (
            Scan(LINEITEM_Q6_SCHEMA),
            Aggregate((AggSpec("count"),)),
        ))
        data = generate_lineitem(256, seed=1)
        machine = build_machine("x86")
        workload = build_workload(machine, data, "dsm", plan=plan)
        with pytest.raises(ValueError):
            list(x86_cg.generate_plan(workload, _BEST["x86"]))

    def test_engine_register_budget_enforced(self):
        # 11 groups x 4 aggregates = 44 slots > 36 registers.
        plan = QueryPlan("wide", (
            Scan(LINEITEM_Q6_SCHEMA),
            Filter(Q6_PREDICATES),
            Aggregate(
                (AggSpec("count"), AggSpec("sum", "l_quantity"),
                 AggSpec("sum", "l_extendedprice"),
                 AggSpec("sum", "l_discount")),
                group_by=("l_discount",),  # domain 0..10 -> 11 groups
            ),
        ))
        data = generate_lineitem(256, seed=1)
        machine = build_machine("hive")
        workload = build_workload(machine, data, "dsm", plan=plan)
        with pytest.raises(ValueError):
            list(hive_cg.generate_plan(workload, _BEST["hive"]))

"""Steady-state trace replay: equivalence, convergence and the guard.

The replay layer's contract is absolute: whatever it does — fast-forward
a converged run or refuse and simulate — the :class:`RunResult` must be
bit-identical to the ``REPRO_EXACT=1`` slow path.  These tests pin that
contract across every architecture, layout and plan family, exercise
real extrapolation on genuinely periodic traces, and check that the
exactness guard refuses the aperiodic cases (data-dependent timing,
latency-bound fetch drift) instead of approximating them.
"""

from __future__ import annotations

import pytest

from repro.codegen import hipe, hive, hmc, x86
from repro.codegen.base import (
    Region,
    RegAllocator,
    ScanConfig,
    TraceRun,
    flatten_runs,
    opaque_run,
)
from repro.cpu.isa import Uop, UopClass, alu, branch, load
from repro.db.datagen import generate_table
from repro.db.query6 import q6_select_plan
from repro.db.workloads import q1_style_plan, selectivity_scan_plan
from repro.sim.machine import build_machine
from repro.sim.replay import ReplayExecutor, replay_enabled
from repro.sim.runner import build_workload, run_scan

_CODEGENS = {"x86": x86, "hmc": hmc, "hive": hive, "hipe": hipe}


def result_fingerprint(result):
    """Everything a RunResult carries, in comparable form."""
    return (
        result.cycles,
        result.uops,
        result.verified,
        result.energy.to_dict(),
        dict(result.stats),
        None if result.aggregates is None else sorted(result.aggregates.items()),
    )


# ---------------------------------------------------------------------------
# replay vs exact equivalence on the real workloads
# ---------------------------------------------------------------------------


_PLANS = {
    "q6": q6_select_plan,
    "q1_style": q1_style_plan,
    "sel_low": lambda: selectivity_scan_plan(0.05),
    "sel_high": lambda: selectivity_scan_plan(0.8),
}


@pytest.mark.parametrize("arch", ["x86", "hmc", "hive", "hipe"])
@pytest.mark.parametrize("layout,strategy", [("dsm", "column"), ("nsm", "tuple")])
@pytest.mark.parametrize("plan_name", ["q6", "q1_style", "sel_low", "sel_high"])
def test_replay_matches_exact(arch, layout, strategy, plan_name):
    """Replay-path results equal full simulation bit-for-bit."""
    plan = _PLANS[plan_name]()
    if strategy == "tuple" and plan.aggregate is not None:
        pytest.skip("aggregate lowering targets the DSM layout (ROADMAP item)")
    op = 64 if arch == "x86" else 256
    scan = ScanConfig(layout, strategy, op, 2)
    rows = 2048
    exact = run_scan(arch, scan, rows=rows, plan=plan, exact=True)
    replay = run_scan(arch, scan, rows=rows, plan=plan, exact=False)
    assert result_fingerprint(exact) == result_fingerprint(replay)


@pytest.mark.parametrize("arch,op", [("x86", 16), ("hmc", 16), ("hive", 16), ("hipe", 16)])
def test_replay_matches_exact_small_ops(arch, op):
    """Small-op column scans (fractional mask strides) stay identical."""
    scan = ScanConfig("dsm", "column", op, 1)
    exact = run_scan(arch, scan, rows=2048, exact=True)
    replay = run_scan(arch, scan, rows=2048, exact=False)
    assert result_fingerprint(exact) == result_fingerprint(replay)


# ---------------------------------------------------------------------------
# the run protocol
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arch", ["x86", "hmc", "hive", "hipe"])
@pytest.mark.parametrize("op,unroll", [(64, 1), (256, 4)])
def test_flattened_runs_equal_generate_plan(arch, op, unroll):
    """flatten(generate_plan_runs) is the exact generate_plan stream."""
    if arch == "x86" and op > 64:
        pytest.skip("x86 ops cap at 64 B")
    plan = q6_select_plan()
    data = generate_table(plan.table, 1024, 7)
    mod = _CODEGENS[arch]

    def serialize(trace):
        out = []
        for u in trace:
            p = u.pim
            pim_key = None if p is None else (
                p.op, p.address, p.size, p.dst_reg, tuple(p.src_regs), p.func,
                p.imm_lo, p.imm_hi, p.lane_bytes, p.pred_reg, p.returns_value,
            )
            out.append((u.cls, u.pc, tuple(u.srcs), u.dst, u.address, u.size,
                        u.taken, pim_key))
        return out

    m1 = build_machine(arch)
    w1 = build_workload(m1, data, "dsm", plan=plan)
    flat = serialize(mod.generate_plan(w1, ScanConfig("dsm", "column", op, unroll)))
    m2 = build_machine(arch)
    w2 = build_workload(m2, data, "dsm", plan=plan)
    runs = serialize(flatten_runs(
        mod.generate_plan_runs(w2, ScanConfig("dsm", "column", op, unroll))
    ))
    assert flat == runs


#: golden digests of the Q6 uop streams (1024 rows, seed 7) — pinned at
#: PR 3, byte-identical to the PR 2 lowering.  A change here means the
#: emitted trace changed, which invalidates every calibrated figure.
_GOLDEN_STREAMS = {
    ("x86", "dsm", "column", 64, 1): "dc9715cb93ae7c48",
    ("x86", "nsm", "tuple", 16, 2): "f35e266432ae7769",
    ("hmc", "dsm", "column", 256, 1): "189f51f072420e31",
    ("hive", "dsm", "column", 256, 4): "b1c087833d5eaca7",
    ("hipe", "dsm", "column", 256, 1): "1acfced95b014c7c",
    ("hive", "nsm", "tuple", 64, 1): "d0cf2f4de5a7485b",
}


@pytest.mark.parametrize("point", sorted(_GOLDEN_STREAMS))
def test_uop_streams_match_golden_digests(point):
    """The lowered traces are pinned: run-structuring must not drift."""
    import hashlib

    arch, layout, strategy, op, unroll = point
    plan = q6_select_plan()
    data = generate_table(plan.table, 1024, 7)
    machine = build_machine(arch)
    workload = build_workload(machine, data, layout, plan=plan)
    digest = hashlib.sha256()
    trace = _CODEGENS[arch].generate_plan(
        workload, ScanConfig(layout, strategy, op, unroll)
    )
    for u in trace:
        p = u.pim
        pim_t = None if p is None else (
            p.op.value, p.address, p.size, p.dst_reg, tuple(p.src_regs),
            None if p.func is None else p.func.value, p.imm_lo, p.imm_hi,
            p.lane_bytes, p.pred_reg, p.pred_expect, p.returns_value,
            p.compound, p.tuple_stride,
        )
        digest.update(repr((u.cls.value, u.pc, tuple(u.srcs), u.dst,
                            u.address, u.size, u.taken, pim_t)).encode())
    assert digest.hexdigest()[:16] == _GOLDEN_STREAMS[point]


def test_run_make_reseats_registers():
    """make(j) yields identical uops regardless of materialisation order."""
    plan = q6_select_plan()
    data = generate_table(plan.table, 2048, 7)
    machine = build_machine("x86")
    workload = build_workload(machine, data, "dsm", plan=plan)
    runs = [r for r in x86.column_runs(workload, ScanConfig("dsm", "column", 64, 1))
            if r.count > 4]
    run = runs[0]
    later = [(u.cls, u.pc, u.srcs, u.dst, u.address) for u in run.make(3)]
    again = [(u.cls, u.pc, u.srcs, u.dst, u.address) for u in run.make(3)]
    assert later == again  # deterministic under repeated/out-of-order calls


def test_region_strides_are_exact_fractions():
    """Bit-packed mask streams advance by sub-byte per-iteration strides."""
    plan = q6_select_plan()
    data = generate_table(plan.table, 2048, 7)
    machine = build_machine("x86")
    workload = build_workload(machine, data, "dsm", plan=plan)
    run = next(iter(x86.column_runs(workload, ScanConfig("dsm", "column", 16, 1))))
    mask_region = run.regions[-1]
    assert mask_region.stride.denominator == 2  # 4 rows/chunk = half a byte


def test_opaque_run_consumes_once():
    source = iter([alu(1, srcs=(), dst=100)])
    run = opaque_run(source)
    assert run.key is None and run.count == 1
    assert len(list(run.make(0))) == 1


def test_reg_allocator_seek():
    regs = RegAllocator()
    a = [regs.new() for _ in range(5)]
    regs.seek(0)
    b = [regs.new() for _ in range(5)]
    assert a == b
    assert regs.counter == 5


# ---------------------------------------------------------------------------
# real extrapolation on periodic traces; refusal on aperiodic ones
# ---------------------------------------------------------------------------


def _fetch_bound_runs(count=3000):
    """A fetch-bound loop: uop flow rates match, state is shift-periodic."""

    def make(j):
        for k in range(11):
            yield Uop(UopClass.NOP, 0x2000 + k)
        yield branch(0x2010, taken=True, srcs=())

    return [TraceRun(key=("synthetic", "fetchbound"), count=count, make=make)]


def _fixed_reg_runs(count=3000):
    """A steady loop keeping a loop-invariant register live: the run
    declares it via ``fixed_regs`` so the phase relabelling leaves it
    alone (regression: fixed ids used to block convergence outright)."""

    def make(j):
        yield alu(0x1FFF, srcs=(100,), dst=100)  # the induction register
        for k in range(9):
            yield Uop(UopClass.NOP, 0x2000 + k)
        yield branch(0x2010, taken=True, srcs=(100,))

    return [TraceRun(key=("synthetic", "fixedreg"), count=count, make=make,
                     regs_per_iter=1, fixed_regs=(100,))]


def _latency_bound_runs(count=1500):
    """A dependent ALU chain.  Before PR 4 the fetch clock ran ahead of
    commit without bound here, so the state never recurred; with the
    fetch floor coupled to ROB commit state the skew is bounded by
    construction and the loop converges."""

    def make(j):
        reg = 100 + (j % 4096)
        for k in range(11):
            yield alu(0x2000 + k, srcs=(reg,), dst=reg)
        yield branch(0x2010, taken=True, srcs=(reg,))

    return [TraceRun(key=("synthetic", "chain"), count=count, make=make,
                     regs_per_iter=1)]


def _aperiodic_branch_runs(count=1500):
    """A data-dependent branch following the Thue-Morse sequence: the
    taken pattern never repeats, the predictor state never recurs, and
    the guard must refuse — there is no period to extrapolate."""

    def make(j):
        taken = bool(bin(j).count("1") % 2)  # Thue-Morse: aperiodic
        for k in range(7):
            yield Uop(UopClass.NOP, 0x2000 + k)
        yield branch(0x2010, taken=taken, srcs=())

    return [TraceRun(key=("synthetic", "thue-morse"), count=count, make=make)]


def _run_both(make_runs):
    m1 = build_machine("x86")
    ex1 = m1.core.execution()
    for run in make_runs():
        for j in range(run.count):
            for u in run.make(j):
                ex1.process(u)
    r1 = ex1.result()
    m2 = build_machine("x86")
    ex2 = m2.core.execution()
    executor = ReplayExecutor(m2, ex2)
    executor.consume(make_runs())
    r2 = ex2.result()
    return r1, m1.stats.flatten(), r2, m2.stats.flatten(), executor.stats


def test_replay_extrapolates_periodic_loop():
    r1, s1, r2, s2, stats = _run_both(_fetch_bound_runs)
    assert stats.runs_converged == 1
    assert stats.skipped_iterations > 1000  # the bulk was extrapolated
    assert (r1.cycles, r1.uops) == (r2.cycles, r2.uops)
    assert s1 == s2  # every counter identical, not just the cycle count


def test_replay_extrapolates_with_fixed_register():
    r1, s1, r2, s2, stats = _run_both(_fixed_reg_runs)
    assert stats.runs_converged == 1
    assert stats.skipped_iterations > 1000
    assert (r1.cycles, r1.uops) == (r2.cycles, r2.uops)
    assert s1 == s2


def test_replay_extrapolates_latency_chain():
    """ROB-coupled fetch floor: the dependent chain's fetch/commit skew
    is bounded, so the loop is shift-periodic and replay engages."""
    r1, s1, r2, s2, stats = _run_both(_latency_bound_runs)
    assert stats.runs_converged == 1
    assert stats.skipped_iterations > 1000
    assert (r1.cycles, r1.uops) == (r2.cycles, r2.uops)
    assert s1 == s2


def test_replay_guard_refuses_aperiodic_branches():
    r1, s1, r2, s2, stats = _run_both(_aperiodic_branch_runs)
    assert stats.runs_converged == 0  # no period exists to verify
    assert (r1.cycles, r1.uops) == (r2.cycles, r2.uops)
    assert s1 == s2


# ---------------------------------------------------------------------------
# periodic-by-construction schedulers (PR 4)
# ---------------------------------------------------------------------------


def test_round_robin_lane_assignment():
    """Link lanes rotate deterministically: packet k rides lane k mod n,
    even when another lane is idle — the pinned scheduler contract the
    replay layer's rotation algebra depends on."""
    from repro.common.resources import MultiChannelBandwidth

    pool = MultiChannelBandwidth(4, 2.0)
    grants = [pool.transfer(0, 4) for _ in range(6)]
    # Lane 0 gets packets 0 and 4, lane 1 gets 1 and 5, etc.
    assert grants == [(0, 2), (0, 2), (0, 2), (0, 2), (2, 4), (2, 4)]
    assert pool.cursor == 6
    assert [ch.bytes_moved for ch in pool.channels] == [8, 8, 4, 4]
    # An earliest-free scheduler would give the late packet to lane 2;
    # round-robin makes it wait for its assigned lane.
    late = pool.transfer(0, 4)
    assert late == (2, 4)  # lane 2's second slot, not lane 2 at cycle 0


def test_round_robin_unit_pool():
    from repro.common.resources import UnitPool

    pool = UnitPool(3)
    starts = [pool.occupy(0, 5)[0] for _ in range(6)]
    assert starts == [0, 0, 0, 5, 5, 5]  # strict rotation, no stealing
    assert pool.cursor == 6


def test_bandwidth_resource_public_next_free():
    """MultiChannelBandwidth no longer reaches into _next_free; the
    public property is the supported view of a pipe's availability."""
    from repro.common.resources import BandwidthResource

    pipe = BandwidthResource(4.0)
    __, end = pipe.transfer(3, 8, address=0x1234)
    assert pipe.next_free == end
    assert pipe.last_address == 0x1234


def test_vault_servers_track_last_address():
    from repro.common.config import HmcConfig
    from repro.memory.vault import Vault

    vault = Vault(0, HmcConfig())
    vault.access(0, bank=2, nbytes=64, is_write=False, address=0xABC0)
    assert vault._command_queue.last_address == 0xABC0
    assert vault.banks[2]._resource.last_address == 0xABC0
    assert vault._data_bus.last_address == 0xABC0


# ---------------------------------------------------------------------------
# engagement on the paper workloads (reduced-interleave cube)
# ---------------------------------------------------------------------------


def _engagement_point(arch, op, rows, plan=None):
    from repro.common.config import reduced_cube_config

    scan = ScanConfig("dsm", "column", op, 1)
    replayed = run_scan(arch, scan, rows=rows, plan=plan,
                        config=reduced_cube_config(arch))
    exact = run_scan(arch, scan, rows=rows, plan=plan,
                     config=reduced_cube_config(arch), exact=True)
    assert result_fingerprint(replayed) == result_fingerprint(exact)
    return replayed.replay


def test_replay_engages_hive_q6_reduced_cube():
    """The full pipeline — round-robin lanes, vault relabelling, tag
    conveyor — engages on the paper's Q6 for HIVE, bit-identically."""
    stats = _engagement_point("hive", 256, 262_144)
    assert stats.runs_converged >= 1
    assert stats.skipped_iterations > 1_000


def test_replay_engages_hipe_selectivity_reduced_cube():
    """HIPE engages when the predicate stream is uniform (a single
    predicate leaves predication nothing to squash)."""
    from repro.db.workloads import selectivity_scan_plan

    stats = _engagement_point("hipe", 256, 262_144,
                              plan=selectivity_scan_plan(0.4))
    assert stats.runs_converged >= 1
    assert stats.skipped_iterations > 1_000


def test_replay_guards_hipe_q6_squashes():
    """HIPE's Q6 predicated-load squashes are data-positional: the
    codegen splits runs at squashing chunks, so the replay layer must
    refuse (the squash pattern never repeats) and stay bit-identical."""
    stats = _engagement_point("hipe", 256, 131_072)
    assert stats.runs_converged == 0  # aperiodic predicate stream
    # The squash flags split the passes into sub-512-iteration keyed
    # runs, which the fragment engine tracks (and, on random Q6 data,
    # honestly refuses to stitch: entry signatures never recur).
    assert stats.fragments_seen > 1
    assert stats.fragments_stitched == 0
    assert stats.fragment_divergence == 0


def test_hipe_run_keys_carry_squash_flags():
    """Iterations whose chunks squash a predicated load lower to a
    different run shape than squash-free iterations."""
    plan = q6_select_plan()
    data = generate_table(plan.table, 65_536, 1994)
    machine = build_machine("hipe")
    workload = build_workload(machine, data, "dsm", plan=plan)
    runs = [r for r in hipe.column_runs(workload, ScanConfig("dsm", "column", 256, 1))]
    assert len(runs) > 1  # Q6's conjunction dies on some 64-row chunks
    # Each key embeds the per-chunk squash flags per predicated level.
    shapes = {r.key[3] for r in runs if r.key is not None}
    assert len(shapes) > 1


def test_replay_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_EXACT", "1")
    assert not replay_enabled()
    monkeypatch.delenv("REPRO_EXACT")
    monkeypatch.setenv("REPRO_REPLAY", "0")
    assert not replay_enabled()
    monkeypatch.delenv("REPRO_REPLAY")
    assert replay_enabled()


# ---------------------------------------------------------------------------
# result-cache keying: replayed and exact runs share entries
# ---------------------------------------------------------------------------


def test_replay_and_exact_share_cache_key(tmp_path, monkeypatch):
    from repro.sim.engine import ExperimentEngine, TIMING_MODEL_DIRS, code_digest
    from pathlib import Path

    # The replay layer must live inside the timing-model code digest, so
    # editing it invalidates cached results automatically.
    assert "sim" in TIMING_MODEL_DIRS
    assert (Path(__file__).parent.parent / "src/repro/sim/replay.py").exists()
    assert code_digest()  # computable

    scan = ScanConfig("dsm", "column", 256, 4)
    engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
    first = engine.run_point("hive", scan, rows=1024)
    assert engine.cache_misses == 1
    # The exact path must hit the entry the (possibly replayed) run wrote.
    monkeypatch.setenv("REPRO_EXACT", "1")
    second = engine.run_point("hive", scan, rows=1024)
    assert engine.cache_hits == 1
    assert result_fingerprint(first) == result_fingerprint(second)


# ---------------------------------------------------------------------------
# the per-run exact tri-state: explicit arguments beat the environment
# ---------------------------------------------------------------------------


def test_exact_argument_overrides_env_both_directions(monkeypatch):
    scan = ScanConfig("dsm", "column", 256, 1)
    # REPRO_EXACT=1 forces the slow path by default...
    monkeypatch.setenv("REPRO_EXACT", "1")
    defaulted = run_scan("hive", scan, rows=1024)
    assert defaulted.replay is None
    # ...but an explicit exact=False wins and takes the replay path.
    forced_replay = run_scan("hive", scan, rows=1024, exact=False)
    assert forced_replay.replay is not None
    monkeypatch.delenv("REPRO_EXACT")
    # With replay on by default, an explicit exact=True still wins.
    forced_exact = run_scan("hive", scan, rows=1024, exact=True)
    assert forced_exact.replay is None
    assert result_fingerprint(forced_replay) == result_fingerprint(forced_exact)


# ---------------------------------------------------------------------------
# fragment-stitched replay: memoised fragment transfer functions
# ---------------------------------------------------------------------------
#
# Data-fragmented passes (HIPE's squash flags split every pass into
# short keyed runs) can never converge periodically; the fragment
# engine instead memoises each fragment's observed transfer function
# keyed by (flag word, count, entry signature) and fast-forwards only
# recurring, verified boundary states.  The contract is the same as
# periodic replay: bit-identical or honest refusal.


def _cyclic_table(plan, period, reps, seed=1994):
    """Tile a ``period``-row table so flag words and boundary states recur."""
    import numpy as np

    from repro.db.datagen import TableData

    base = generate_table(plan.table, period, seed)
    columns = {name: np.tile(col, reps) for name, col in base.columns.items()}
    return TableData(rows=period * reps, columns=columns, schema=base.schema)


def _fragment_point(arch, op, plan, rows, data=None):
    from repro.common.config import reduced_cube_config

    scan = ScanConfig("dsm", "column", op, 1)
    config = reduced_cube_config(arch)
    replayed = run_scan(arch, scan, rows=rows, data=data, plan=plan,
                        config=config, exact=False)
    exact = run_scan(arch, scan, rows=rows, data=data, plan=plan,
                     config=config, exact=True)
    assert result_fingerprint(replayed) == result_fingerprint(exact)
    return replayed.replay


@pytest.mark.parametrize("arch,op", [("x86", 64), ("hmc", 256),
                                     ("hive", 256), ("hipe", 256)])
@pytest.mark.parametrize("plan_name", ["q6", "sel"])
def test_fragment_bit_identity_reduced_cube(arch, op, plan_name):
    """Whatever the fragment engine does on each arch — stitch (HIPE),
    learn without trusting, or give up — results stay bit-identical."""
    from repro.db.workloads import selectivity_scan_plan

    plan = q6_select_plan() if plan_name == "q6" else selectivity_scan_plan(0.2)
    stats = _fragment_point(arch, op, plan, rows=32_768)
    assert stats.fragment_divergence == 0


def test_fragment_stitching_engages_hipe_cyclic():
    """On cyclic data HIPE's squash-fragmented Q6 pass fast-forwards:
    flag words and entry signatures recur, edges earn trust, and most
    fragments stitch — bit-identically (the engagement demonstration)."""
    plan = q6_select_plan()
    data = _cyclic_table(plan, period=32_768, reps=16)
    stats = _fragment_point("hipe", 256, plan, rows=data.rows, data=data)
    assert stats.fragments_seen > 500
    assert stats.fragments_stitched > 100
    assert stats.fragment_commits >= 1
    assert stats.skipped_iterations > 1_000
    assert stats.fragments_poisoned == 0
    assert stats.fragment_divergence == 0


def test_fragment_first_seen_states_refuse():
    """Two periods are not enough to trust any edge (FRAGMENT_TRUST_OBS
    consistent observations required), so nothing may stitch: first-seen
    or once-seen transfer functions are never applied."""
    plan = q6_select_plan()
    data = _cyclic_table(plan, period=32_768, reps=2)
    stats = _fragment_point("hipe", 256, plan, rows=data.rows, data=data)
    assert stats.fragments_seen > 100
    assert stats.fragments_stitched == 0
    assert stats.fragment_divergence == 0


def test_fragment_thue_morse_aperiodic_guard():
    """An aperiodic (Thue-Morse) chunk-squash pattern: descriptors recur
    but never periodically.  Stitching individual recurring transfer
    functions is still sound — the pinned contract is bit-identity with
    zero divergence, not refusal."""
    import numpy as np

    from repro.db.datagen import Q6_SHIPDATE_HI, Q6_SHIPDATE_LO

    plan = q6_select_plan()
    rows, chunk = 65_536, 64
    data = generate_table(plan.table, rows, 1994)
    n_chunks = rows // chunk
    # tm[c] = parity of popcount(c): the canonical aperiodic 0/1 sequence
    tm = np.array([bin(c).count("1") & 1 for c in range(n_chunks)], dtype=bool)
    shipdate = np.where(np.repeat(tm, chunk),
                        Q6_SHIPDATE_HI + 30,  # whole chunk fails -> squash
                        Q6_SHIPDATE_LO)       # whole chunk passes
    data.columns["l_shipdate"] = shipdate.astype(
        data.columns["l_shipdate"].dtype)
    stats = _fragment_point("hipe", 256, plan, rows=rows, data=data)
    assert stats.fragment_divergence == 0
    assert stats.runs_converged == 0  # nothing about this trace is periodic


def test_fragments_env_escape_hatch(monkeypatch):
    """REPRO_FRAGMENTS=0 disables stitching (runs simulate honestly)."""
    from repro.sim.replay import fragments_enabled

    assert fragments_enabled()
    monkeypatch.setenv("REPRO_FRAGMENTS", "0")
    assert not fragments_enabled()
    plan = q6_select_plan()
    data = _cyclic_table(plan, period=8_192, reps=4)
    stats = _fragment_point("hipe", 256, plan, rows=data.rows, data=data)
    assert stats.fragments_stitched == 0


def test_fragment_partial_loads_bit_identity():
    """partial_predicated_loads no longer bypasses replay: the run key
    carries per-chunk matched-lane counts, so the replay path sees the
    full timing shape and stays bit-identical."""
    from dataclasses import replace

    from repro.common.config import hipe_logic_config, reduced_cube_config

    plan = q6_select_plan()
    config = replace(reduced_cube_config("hipe"),
                     pim=replace(hipe_logic_config(),
                                 partial_predicated_loads=True))
    scan = ScanConfig("dsm", "column", 256, 1)
    replayed = run_scan("hipe", scan, rows=32_768, plan=plan,
                        config=config, exact=False)
    exact = run_scan("hipe", scan, rows=32_768, plan=plan,
                     config=config, exact=True)
    assert replayed.replay is not None  # the replay path actually ran
    assert result_fingerprint(replayed) == result_fingerprint(exact)

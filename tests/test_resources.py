"""Unit + property tests for the timing-resource algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.resources import (
    BandwidthResource,
    BusyResource,
    MultiChannelBandwidth,
    OccupancyResource,
    SlottedResource,
    UnitPool,
)


class TestSlottedResource:
    def test_width_one_serialises(self):
        res = SlottedResource(1)
        assert res.reserve(10) == 10
        assert res.reserve(10) == 11
        assert res.reserve(10) == 12

    def test_width_n_shares_cycle(self):
        res = SlottedResource(4)
        grants = [res.reserve(5) for _ in range(5)]
        assert grants == [5, 5, 5, 5, 6]

    def test_out_of_order_requests_clamped(self):
        res = SlottedResource(1)
        res.reserve(100)
        # A request to the past gets the next free slot, never < history.
        assert res.reserve(50) >= 50

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            SlottedResource(0)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=60), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50)
    def test_never_overbooks(self, cycles, width):
        res = SlottedResource(width)
        grants = [res.reserve(c) for c in sorted(cycles)]
        for g in set(grants):
            assert grants.count(g) <= width
        for c, g in zip(sorted(cycles), grants):
            assert g >= c


class TestOccupancyResource:
    def test_grants_immediately_when_free(self):
        res = OccupancyResource(2)
        assert res.acquire(10, 20) == 10
        assert res.acquire(10, 30) == 10

    def test_waits_for_earliest_release(self):
        res = OccupancyResource(2)
        res.acquire(0, 100)
        res.acquire(0, 50)
        # Pool full until cycle 50.
        assert res.acquire(10, 200) == 50

    def test_released_entries_reusable(self):
        res = OccupancyResource(1)
        res.acquire(0, 5)
        assert res.acquire(6, 10) == 6

    def test_earliest_free(self):
        res = OccupancyResource(1)
        res.acquire(0, 42)
        assert res.earliest_free(10) == 42
        assert res.earliest_free(50) == 50

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 50)),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_entries(self, requests, entries):
        res = OccupancyResource(entries)
        intervals = []
        for cycle, duration in sorted(requests):
            granted = res.acquire(cycle, cycle + duration)
            end = max(cycle + duration, granted)
            intervals.append((granted, end))
            assert granted >= cycle
        # At any grant instant, no more than `entries` intervals overlap.
        for start, __ in intervals:
            live = sum(1 for s, e in intervals if s <= start < e)
            assert live <= entries


class TestBandwidthResource:
    def test_serialises_back_to_back(self):
        pipe = BandwidthResource(4.0)  # 4 B/cycle
        assert pipe.transfer(0, 16) == (0, 4)
        assert pipe.transfer(0, 16) == (4, 8)

    def test_idle_gap_respected(self):
        pipe = BandwidthResource(4.0)
        pipe.transfer(0, 4)
        assert pipe.transfer(100, 4) == (100, 101)

    def test_minimum_one_cycle(self):
        pipe = BandwidthResource(64.0)
        start, end = pipe.transfer(0, 1)
        assert end - start == 1

    def test_counts_bytes(self):
        pipe = BandwidthResource(8.0)
        pipe.transfer(0, 24)
        pipe.transfer(0, 8)
        assert pipe.bytes_moved == 32

    def test_rejects_negative(self):
        pipe = BandwidthResource(8.0)
        with pytest.raises(ValueError):
            pipe.transfer(0, -1)


class TestMultiChannelBandwidth:
    def test_channels_parallelise(self):
        lanes = MultiChannelBandwidth(2, 4.0)
        a = lanes.transfer(0, 16)
        b = lanes.transfer(0, 16)
        assert a == (0, 4)
        assert b == (0, 4)  # second channel
        c = lanes.transfer(0, 16)
        assert c == (4, 8)  # back to a busy channel

    def test_total_bytes(self):
        lanes = MultiChannelBandwidth(4, 8.0)
        for _ in range(4):
            lanes.transfer(0, 10)
        assert lanes.bytes_moved == 40


class TestBusyResource:
    def test_sequential_occupancy(self):
        server = BusyResource()
        assert server.occupy(0, 10) == (0, 10)
        assert server.occupy(5, 10) == (10, 20)
        assert server.next_free == 20

    def test_push_next_free(self):
        server = BusyResource()
        server.push_next_free(100)
        assert server.occupy(0, 1) == (100, 101)

    def test_busy_cycles_accumulate(self):
        server = BusyResource()
        server.occupy(0, 7)
        server.occupy(0, 3)
        assert server.busy_cycles == 10


class TestUnitPool:
    def test_picks_soonest_free_unit(self):
        pool = UnitPool(2)
        assert pool.occupy(0, 10) == (0, 10)
        assert pool.occupy(0, 10) == (0, 10)
        assert pool.occupy(0, 10)[0] == 10

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            UnitPool(0)


class TestSlottedRing:
    """Ring-buffer edge cases: wraparound, long stalls, time shifts."""

    def test_wraparound_under_long_stall_matches_reference(self):
        """Grants across several prune windows equal the unbounded model."""
        res = SlottedResource(2, window=64)

        class Unbounded:
            def __init__(self, slots):
                self.slots = slots
                self.used = {}

            def reserve(self, cycle):
                while self.used.get(cycle, 0) >= self.slots:
                    cycle += 1
                self.used[cycle] = self.used.get(cycle, 0) + 1
                return cycle

        reference = Unbounded(2)
        cycle = 0
        for step in [1, 1, 0, 3, 150, 1, 0, 700, 2, 2, 5000, 1, 1]:
            cycle += step
            # Monotone requests never look behind the horizon, so the
            # bounded ring must agree with the unbounded model exactly,
            # however many times the ring has wrapped.
            assert res.reserve(cycle) == reference.reserve(cycle)

    def test_far_jump_resets_ring_cleanly(self):
        res = SlottedResource(1, window=16)
        for c in range(10):
            assert res.reserve(0) == c
        far = 10_000_000
        assert res.reserve(far) == far
        # The reset must not leak stale counters into the new window.
        assert res.reserve(far) == far + 1
        assert res.used_at(far) == 1

    def test_past_requests_clamp_to_horizon(self):
        res = SlottedResource(1, window=16)
        res.reserve(1000)  # horizon advances past 2*window
        granted = res.reserve(0)
        assert granted >= res._horizon

    def test_shift_time_preserves_relative_state(self):
        res = SlottedResource(1)
        res.reserve(100)
        res.reserve(100)
        before = res.sig_entries(now=100, grace=1024)
        res.shift_time(5000)
        after = res.sig_entries(now=5100, grace=1024)
        assert before == after
        # The shifted cycle is genuinely occupied at its new position.
        assert res.used_at(5100) == 1
        assert res.reserve(5100) == 5102


class TestOccupancyEdges:
    def test_full_window_acquire_grants_at_earliest_release(self):
        res = OccupancyResource(4)
        for i in range(4):
            res.acquire(0, 100 + 10 * i)
        # Pool exhausted: the next acquire waits for the earliest holder.
        assert res.acquire(5, 500) == 100
        assert res.acquire(5, 600) == 110
        assert res.in_flight == 4

    def test_sig_entries_sorted_with_multiplicity(self):
        res = OccupancyResource(8)
        res.acquire(0, 50)
        res.acquire(0, 50)
        res.acquire(0, 40)
        assert res.sig_entries(now=10, grace=1024) == (30, 40, 40)

    def test_shift_time_moves_releases(self):
        res = OccupancyResource(2)
        res.acquire(0, 30)
        res.acquire(0, 40)
        res.shift_time(1000)
        assert res.acquire(0, 2000) == 1030


class TestBusyResourceClamps:
    def test_push_next_free_never_regresses(self):
        server = BusyResource()
        server.occupy(0, 50)
        server.push_next_free(10)  # past the horizon: clamped, no effect
        assert server.next_free == 50
        server.push_next_free(80)
        assert server.next_free == 80

    def test_clamp_next_free_only_lowers(self):
        server = BusyResource()
        server.occupy(0, 100)
        server.clamp_next_free(200)  # above: no effect
        assert server.next_free == 100
        server.clamp_next_free(30)  # the replay dead-floor clamp
        assert server.next_free == 30
        server.clamp_next_free(60)  # never raises
        assert server.next_free == 30

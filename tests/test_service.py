"""Tests for the simulation service (repro.service).

The contract under test is the ISSUE 6 acceptance list: service sweeps
are bit-identical cache peers of ``ExperimentEngine.sweep`` (same keys,
warm hits in both directions), results stream back completed-first,
a killed worker is retried with identical results, and each distinct
dataset crosses to workers as one shared-memory image, never as
per-point pickled columns.
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.codegen.base import ScanConfig
from repro.db.datagen import generate_lineitem
from repro.memory.shared_data import (
    DatasetImage,
    attach_dataset,
    attached_count,
    detach_all,
)
from repro.service import JobState, SimulationService
from repro.sim.engine import ExperimentEngine, PointExecutionError, data_digest

ROWS = 256
POINTS = [
    ("x86", ScanConfig("dsm", "column", 64)),
    ("hmc", ScanConfig("dsm", "column", 256)),
    ("hive", ScanConfig("dsm", "column", 256, unroll=8)),
    ("hipe", ScanConfig("dsm", "column", 256, unroll=8)),
]

#: a point slow enough (~1s cold) that the supervisor can reliably be
#: observed with it RUNNING — used by the kill/cancel/timeout tests
SLOW_POINT = ("x86", ScanConfig("dsm", "column", 64))
SLOW_ROWS = 131_072


def wait_for_running(service, ticket, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.status(ticket)
        if record.state is JobState.RUNNING:
            return record
        if record.state.terminal:
            raise AssertionError(f"job went {record.state} before RUNNING")
        time.sleep(0.01)
    raise AssertionError("job never reached RUNNING")


class TestBitIdentity:
    def test_sweep_matches_engine_bit_identically(self, tmp_path):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        batch = engine.sweep("batch", POINTS, ROWS)
        with SimulationService(jobs=2, use_cache=False) as service:
            served = service.sweep("served", POINTS, ROWS)
        assert len(served.runs) == len(batch.runs)
        for ours, theirs in zip(served.runs, batch.runs):
            assert ours == theirs  # full RunResult equality, field by field

    def test_cache_parity_engine_warms_service_hits(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")
        batch = engine.sweep("warm", POINTS[:2], ROWS)
        with SimulationService(jobs=2, cache_dir=tmp_path / "cache") as service:
            served = service.sweep("reuse", POINTS[:2], ROWS)
            assert service.cache_hits == 2
            assert service.simulated_points == 0
        for ours, theirs in zip(served.runs, batch.runs):
            assert ours == theirs

    def test_cache_parity_service_warms_engine_hits(self, tmp_path):
        with SimulationService(jobs=2, cache_dir=tmp_path / "cache") as service:
            served = service.sweep("warm", POINTS[:2], ROWS)
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")
        batch = engine.sweep("reuse", POINTS[:2], ROWS)
        assert engine.cache_hits == 2
        assert engine.simulated_points == 0
        for ours, theirs in zip(batch.runs, served.runs):
            assert ours == theirs


class TestStreaming:
    def test_completed_points_stream_before_the_slowest_finishes(self):
        with SimulationService(jobs=2, use_cache=False) as service:
            slow = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            quick = [
                service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)
                for _ in range(3)
            ]
            first = next(iter(service.stream([slow] + quick)))
            # A quick point arrived while the slow one was still going:
            # the pool.map "wait for the slowest" barrier is gone.
            assert first.ticket.id in {t.id for t in quick}
            assert not service.status(slow).state.terminal
            records = service.wait([slow] + quick, timeout=120)
        assert [r.state for r in records] == [JobState.DONE] * 4

    def test_stream_includes_cache_hits_and_flags_them(self, tmp_path):
        with SimulationService(jobs=2, cache_dir=tmp_path / "c") as service:
            cold = service.wait([service.submit(*POINTS[0], ROWS)])[0]
            warm = service.wait([service.submit(*POINTS[0], ROWS)])[0]
        assert cold.cached is False
        assert warm.cached is True
        assert warm.result == cold.result

    def test_stream_timeout_raises(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            slow = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            with pytest.raises(TimeoutError):
                for _ in service.stream([slow], timeout=0.01):
                    pass
            service.cancel(slow)


class TestRetry:
    def test_killed_worker_is_retried_with_identical_result(self, tmp_path):
        reference = ExperimentEngine(jobs=1, use_cache=False).sweep(
            "ref", [SLOW_POINT], SLOW_ROWS
        ).runs[0]
        with SimulationService(jobs=2, use_cache=False) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            record = wait_for_running(service, ticket)
            os.kill(record.worker_pid, signal.SIGKILL)
            done = service.wait([ticket], timeout=180)[0]
            assert done.state is JobState.DONE
            assert done.attempts == 2
            assert service.retried_jobs == 1
            assert done.result == reference  # retry is bit-identical

    def test_retry_budget_exhausted_fails_the_job(self):
        with SimulationService(jobs=1, use_cache=False, retries=0) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            record = wait_for_running(service, ticket)
            os.kill(record.worker_pid, signal.SIGKILL)
            done = service.wait([ticket], timeout=60)[0]
            assert done.state is JobState.FAILED
            assert "worker died" in done.error
            assert done.attempts == 1

    def test_timeout_kills_and_reports(self):
        with SimulationService(jobs=1, use_cache=False, retries=0,
                               timeout=0.05) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            done = service.wait([ticket], timeout=60)[0]
            assert done.state is JobState.FAILED
            assert "timeout" in done.error

    def test_deterministic_error_fails_fast_with_point_context(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            ticket = service.submit("bogus", ScanConfig("dsm", "column", 256),
                                    ROWS)
            record = service.wait([ticket], timeout=60)[0]
            assert record.state is JobState.FAILED
            assert record.attempts == 1  # exceptions are not retried
            assert "unknown architecture" in record.error
            with pytest.raises(PointExecutionError) as excinfo:
                service.sweep("bad", [("bogus", POINTS[0][1])], ROWS)
            assert excinfo.value.arch == "bogus"
            assert excinfo.value.rows == ROWS
            assert "arch=bogus" in str(excinfo.value)


class TestCancel:
    def test_cancel_pending_and_running(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            queued = service.submit("hive", ScanConfig("dsm", "column", 256),
                                    ROWS)
            wait_for_running(service, running)
            assert service.cancel(queued) is True  # still pending
            assert service.cancel(running) is True  # worker killed
            records = service.wait([running, queued], timeout=60)
            assert [r.state for r in records] == [JobState.CANCELLED] * 2
            # a terminal job cannot be cancelled again
            assert service.cancel(queued) is False

    def test_service_keeps_serving_after_cancel(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            victim = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            service.cancel(victim)
            after = service.wait(
                [service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)],
                timeout=60,
            )[0]
            assert after.state is JobState.DONE


class TestSharedDatasets:
    def test_one_image_per_distinct_dataset_and_no_column_pickling(self):
        with SimulationService(jobs=2, use_cache=False) as service:
            service.sweep("all", POINTS, ROWS)
            assert service.datasets_published == 1
            # the per-job payload carries a descriptor, not the columns:
            # pickling it must cost bytes, not megabytes
            record = service.status(
                service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)
            )
            payload = pickle.dumps(record.payload)
            assert len(payload) < 4096
            handle = record.payload["dataset"]
            assert handle.nbytes == ROWS * 4 * 4  # four int32 Q6 columns
            service.wait([record.ticket], timeout=60)
            assert service.datasets_published == 1  # still the same image

    def test_distinct_datasets_get_distinct_images(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            service.wait([
                service.submit("hive", ScanConfig("dsm", "column", 256), 128),
                service.submit("hive", ScanConfig("dsm", "column", 256), 192),
            ], timeout=60)
            assert service.datasets_published == 2

    def test_attach_roundtrips_and_memoises(self):
        data = generate_lineitem(128, seed=7)
        digest = data_digest(data)
        image = DatasetImage(data, digest)
        try:
            before = attached_count()
            attached = attach_dataset(image.handle)
            again = attach_dataset(image.handle)
            assert again is attached  # mapped once per process
            assert attached_count() == before + 1
            assert attached.rows == data.rows
            assert attached.column_names() == data.column_names()
            for name in data.columns:
                assert np.array_equal(attached[name], data[name])
                assert not attached[name].flags.writeable
            assert data_digest(attached) == digest
            del attached, again
        finally:
            detach_all()
            image.close()


class TestEngineRouting:
    def test_engine_uses_injected_service(self, tmp_path):
        with SimulationService(jobs=2, use_cache=False) as service:
            engine = ExperimentEngine(jobs=1, use_cache=False, service=service)
            reference = ExperimentEngine(jobs=1, use_cache=False)
            routed = engine.sweep("via-service", POINTS[:2], ROWS)
            direct = reference.sweep("direct", POINTS[:2], ROWS)
            assert service.simulated_points == 2
            for ours, theirs in zip(routed.runs, direct.runs):
                assert ours == theirs

    def test_repro_service_env_routes_through_default_service(self, monkeypatch):
        import repro.service as service_module

        monkeypatch.setenv("REPRO_SERVICE", "1")
        monkeypatch.setenv("REPRO_CACHE", "0")  # keep the repo cache out
        service_module.shutdown_default_service()
        try:
            engine = ExperimentEngine(jobs=1, use_cache=False)
            engine.sweep("routed", POINTS[2:3], ROWS)
            service = service_module.default_service()
            assert service.simulated_points >= 1
        finally:
            service_module.shutdown_default_service()

    def test_env_off_means_no_service(self, monkeypatch):
        from repro.service import service_routing_enabled

        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        assert service_routing_enabled() is False
        monkeypatch.setenv("REPRO_SERVICE", "0")
        assert service_routing_enabled() is False
        monkeypatch.setenv("REPRO_SERVICE", "1")
        assert service_routing_enabled() is True


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        service = SimulationService(jobs=1, use_cache=False)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)

    def test_close_is_idempotent_and_unlinks_images(self):
        service = SimulationService(jobs=1, use_cache=False)
        ticket = service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)
        service.wait([ticket], timeout=60)
        names = [image._shm.name for image in service._images.values()]
        service.close()
        service.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                from multiprocessing import shared_memory

                shared_memory.SharedMemory(name=name)

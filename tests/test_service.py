"""Tests for the simulation service (repro.service).

The contract under test is the ISSUE 6 acceptance list: service sweeps
are bit-identical cache peers of ``ExperimentEngine.sweep`` (same keys,
warm hits in both directions), results stream back completed-first,
a killed worker is retried with identical results, and each distinct
dataset crosses to workers as one shared-memory image, never as
per-point pickled columns.

ISSUE 9 adds the overload-safety contract: bounded admission with
structured load-shedding and per-client/per-class quotas, blocking
admission, exponential backoff with deterministic jitter on retries,
per-job deadlines that checkpoint-then-expire, graceful drain with
checkpoint-resume in a successor service, stray-SIGTERM checkpoint
requeue, and a shared-memory budget that LRU-unpublishes idle dataset
images without ever breaking a referenced one.
"""

import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.codegen.base import ScanConfig
from repro.db.datagen import generate_lineitem
from repro.memory.shared_data import (
    DatasetImage,
    attach_dataset,
    attached_count,
    detach_all,
)
from repro.service import (
    JobState,
    ServiceDrainingError,
    ServiceOverloadError,
    SimulationService,
    backoff_delay,
)
from repro.sim.engine import ExperimentEngine, PointExecutionError, data_digest
from repro.sim.runner import run_scan

ROWS = 256
POINTS = [
    ("x86", ScanConfig("dsm", "column", 64)),
    ("hmc", ScanConfig("dsm", "column", 256)),
    ("hive", ScanConfig("dsm", "column", 256, unroll=8)),
    ("hipe", ScanConfig("dsm", "column", 256, unroll=8)),
]

#: a point slow enough (~1s cold) that the supervisor can reliably be
#: observed with it RUNNING — used by the kill/cancel/timeout tests
SLOW_POINT = ("x86", ScanConfig("dsm", "column", 64))
SLOW_ROWS = 131_072


def wait_for_running(service, ticket, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.status(ticket)
        if record.state is JobState.RUNNING:
            return record
        if record.state.terminal:
            raise AssertionError(f"job went {record.state} before RUNNING")
        time.sleep(0.01)
    raise AssertionError("job never reached RUNNING")


class TestBitIdentity:
    def test_sweep_matches_engine_bit_identically(self, tmp_path):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        batch = engine.sweep("batch", POINTS, ROWS)
        with SimulationService(jobs=2, use_cache=False) as service:
            served = service.sweep("served", POINTS, ROWS)
        assert len(served.runs) == len(batch.runs)
        for ours, theirs in zip(served.runs, batch.runs):
            assert ours == theirs  # full RunResult equality, field by field

    def test_cache_parity_engine_warms_service_hits(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")
        batch = engine.sweep("warm", POINTS[:2], ROWS)
        with SimulationService(jobs=2, cache_dir=tmp_path / "cache") as service:
            served = service.sweep("reuse", POINTS[:2], ROWS)
            assert service.cache_hits == 2
            assert service.simulated_points == 0
        for ours, theirs in zip(served.runs, batch.runs):
            assert ours == theirs

    def test_cache_parity_service_warms_engine_hits(self, tmp_path):
        with SimulationService(jobs=2, cache_dir=tmp_path / "cache") as service:
            served = service.sweep("warm", POINTS[:2], ROWS)
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")
        batch = engine.sweep("reuse", POINTS[:2], ROWS)
        assert engine.cache_hits == 2
        assert engine.simulated_points == 0
        for ours, theirs in zip(batch.runs, served.runs):
            assert ours == theirs


class TestStreaming:
    def test_completed_points_stream_before_the_slowest_finishes(self):
        with SimulationService(jobs=2, use_cache=False) as service:
            slow = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            quick = [
                service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)
                for _ in range(3)
            ]
            first = next(iter(service.stream([slow] + quick)))
            # A quick point arrived while the slow one was still going:
            # the pool.map "wait for the slowest" barrier is gone.
            assert first.ticket.id in {t.id for t in quick}
            assert not service.status(slow).state.terminal
            records = service.wait([slow] + quick, timeout=120)
        assert [r.state for r in records] == [JobState.DONE] * 4

    def test_stream_includes_cache_hits_and_flags_them(self, tmp_path):
        with SimulationService(jobs=2, cache_dir=tmp_path / "c") as service:
            cold = service.wait([service.submit(*POINTS[0], ROWS)])[0]
            warm = service.wait([service.submit(*POINTS[0], ROWS)])[0]
        assert cold.cached is False
        assert warm.cached is True
        assert warm.result == cold.result

    def test_stream_timeout_raises(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            slow = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            with pytest.raises(TimeoutError):
                for _ in service.stream([slow], timeout=0.01):
                    pass
            service.cancel(slow)


class TestRetry:
    def test_killed_worker_is_retried_with_identical_result(self, tmp_path):
        reference = ExperimentEngine(jobs=1, use_cache=False).sweep(
            "ref", [SLOW_POINT], SLOW_ROWS
        ).runs[0]
        with SimulationService(jobs=2, use_cache=False) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            record = wait_for_running(service, ticket)
            os.kill(record.worker_pid, signal.SIGKILL)
            done = service.wait([ticket], timeout=180)[0]
            assert done.state is JobState.DONE
            assert done.attempts == 2
            assert service.retried_jobs == 1
            assert done.result == reference  # retry is bit-identical

    def test_retry_budget_exhausted_fails_the_job(self):
        with SimulationService(jobs=1, use_cache=False, retries=0) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            record = wait_for_running(service, ticket)
            os.kill(record.worker_pid, signal.SIGKILL)
            done = service.wait([ticket], timeout=60)[0]
            assert done.state is JobState.FAILED
            assert "worker died" in done.error
            assert done.attempts == 1

    def test_timeout_kills_and_reports(self):
        with SimulationService(jobs=1, use_cache=False, retries=0,
                               timeout=0.05) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            done = service.wait([ticket], timeout=60)[0]
            assert done.state is JobState.FAILED
            assert "timeout" in done.error

    def test_deterministic_error_fails_fast_with_point_context(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            ticket = service.submit("bogus", ScanConfig("dsm", "column", 256),
                                    ROWS)
            record = service.wait([ticket], timeout=60)[0]
            assert record.state is JobState.FAILED
            assert record.attempts == 1  # exceptions are not retried
            assert "unknown architecture" in record.error
            with pytest.raises(PointExecutionError) as excinfo:
                service.sweep("bad", [("bogus", POINTS[0][1])], ROWS)
            assert excinfo.value.arch == "bogus"
            assert excinfo.value.rows == ROWS
            assert "arch=bogus" in str(excinfo.value)


class TestCancel:
    def test_cancel_pending_and_running(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            queued = service.submit("hive", ScanConfig("dsm", "column", 256),
                                    ROWS)
            wait_for_running(service, running)
            assert service.cancel(queued) is True  # still pending
            assert service.cancel(running) is True  # worker killed
            records = service.wait([running, queued], timeout=60)
            assert [r.state for r in records] == [JobState.CANCELLED] * 2
            # a terminal job cannot be cancelled again
            assert service.cancel(queued) is False

    def test_service_keeps_serving_after_cancel(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            victim = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            service.cancel(victim)
            after = service.wait(
                [service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)],
                timeout=60,
            )[0]
            assert after.state is JobState.DONE


class TestSharedDatasets:
    def test_one_image_per_distinct_dataset_and_no_column_pickling(self):
        with SimulationService(jobs=2, use_cache=False) as service:
            service.sweep("all", POINTS, ROWS)
            assert service.datasets_published == 1
            # the per-job payload carries a descriptor, not the columns:
            # pickling it must cost bytes, not megabytes
            record = service.status(
                service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)
            )
            payload = pickle.dumps(record.payload)
            assert len(payload) < 4096
            handle = record.payload["dataset"]
            assert handle.nbytes == ROWS * 4 * 4  # four int32 Q6 columns
            service.wait([record.ticket], timeout=60)
            assert service.datasets_published == 1  # still the same image

    def test_distinct_datasets_get_distinct_images(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            service.wait([
                service.submit("hive", ScanConfig("dsm", "column", 256), 128),
                service.submit("hive", ScanConfig("dsm", "column", 256), 192),
            ], timeout=60)
            assert service.datasets_published == 2

    def test_attach_roundtrips_and_memoises(self):
        data = generate_lineitem(128, seed=7)
        digest = data_digest(data)
        image = DatasetImage(data, digest)
        try:
            before = attached_count()
            attached = attach_dataset(image.handle)
            again = attach_dataset(image.handle)
            assert again is attached  # mapped once per process
            assert attached_count() == before + 1
            assert attached.rows == data.rows
            assert attached.column_names() == data.column_names()
            for name in data.columns:
                assert np.array_equal(attached[name], data[name])
                assert not attached[name].flags.writeable
            assert data_digest(attached) == digest
            del attached, again
        finally:
            detach_all()
            image.close()


class TestEngineRouting:
    def test_engine_uses_injected_service(self, tmp_path):
        with SimulationService(jobs=2, use_cache=False) as service:
            engine = ExperimentEngine(jobs=1, use_cache=False, service=service)
            reference = ExperimentEngine(jobs=1, use_cache=False)
            routed = engine.sweep("via-service", POINTS[:2], ROWS)
            direct = reference.sweep("direct", POINTS[:2], ROWS)
            assert service.simulated_points == 2
            for ours, theirs in zip(routed.runs, direct.runs):
                assert ours == theirs

    def test_repro_service_env_routes_through_default_service(self, monkeypatch):
        import repro.service as service_module

        monkeypatch.setenv("REPRO_SERVICE", "1")
        monkeypatch.setenv("REPRO_CACHE", "0")  # keep the repo cache out
        service_module.shutdown_default_service()
        try:
            engine = ExperimentEngine(jobs=1, use_cache=False)
            engine.sweep("routed", POINTS[2:3], ROWS)
            service = service_module.default_service()
            assert service.simulated_points >= 1
        finally:
            service_module.shutdown_default_service()

    def test_env_off_means_no_service(self, monkeypatch):
        from repro.service import service_routing_enabled

        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        assert service_routing_enabled() is False
        monkeypatch.setenv("REPRO_SERVICE", "0")
        assert service_routing_enabled() is False
        monkeypatch.setenv("REPRO_SERVICE", "1")
        assert service_routing_enabled() is True


QUICK_POINT = ("hive", ScanConfig("dsm", "column", 256))


class TestAdmission:
    def test_queue_full_sheds_with_structured_error(self):
        with SimulationService(jobs=1, use_cache=False,
                               max_pending=1) as service:
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            wait_for_running(service, running)
            queued = service.submit(*QUICK_POINT, ROWS)
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(*QUICK_POINT, ROWS, seed=7)
            assert excinfo.value.reason == "queue_full"
            assert excinfo.value.limit == 1
            payload = excinfo.value.to_dict()
            assert payload["error"] == "overload"
            assert payload["retry_after"] > 0
            assert service.admission.rejected == 1
            # a shed submit leaves no trace in the job registry
            assert service.progress()["total"] == 2
            service.cancel(running)
            service.cancel(queued)

    def test_client_quota_binds_per_client_and_releases_on_terminal(self):
        with SimulationService(jobs=1, use_cache=False, client_quota=1,
                               max_pending=64) as service:
            held = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS,
                                  client="alice")
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(*QUICK_POINT, ROWS, client="alice")
            assert excinfo.value.reason == "client_quota"
            # another client is not starved by alice's quota
            other = service.submit(*QUICK_POINT, ROWS, client="bob")
            # a terminal state releases the quota: alice may submit again
            service.cancel(held)
            again = service.submit(*QUICK_POINT, ROWS, client="alice")
            records = service.wait([other, again], timeout=120)
            assert [r.state for r in records] == [JobState.DONE] * 2
            assert service.admission.outstanding_by_client == {}

    def test_class_quota_bounds_one_class_only(self):
        with SimulationService(jobs=1, use_cache=False,
                               class_quotas={"bulk": 1}) as service:
            bulk = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS,
                                  job_class="bulk")
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(*QUICK_POINT, ROWS, job_class="bulk")
            assert excinfo.value.reason == "class_quota"
            # the default class rides along untouched
            ok = service.wait([service.submit(*QUICK_POINT, ROWS)],
                              timeout=120)[0]
            assert ok.state is JobState.DONE
            service.cancel(bulk)

    def test_blocking_submit_parks_until_room_opens(self):
        with SimulationService(jobs=1, use_cache=False,
                               max_pending=1) as service:
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            wait_for_running(service, running)
            queued = service.submit(*QUICK_POINT, ROWS)
            admitted = {}

            def blocked():
                admitted["ticket"] = service.submit(
                    *QUICK_POINT, ROWS, seed=7, block=True,
                    block_timeout=30.0,
                )

            thread = threading.Thread(target=blocked)
            thread.start()
            time.sleep(0.3)
            assert "ticket" not in admitted  # parked, not shed
            service.cancel(queued)  # room opens
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert "ticket" in admitted
            service.cancel(running)
            service.cancel(admitted["ticket"])

    def test_blocking_submit_gives_up_after_its_patience(self):
        with SimulationService(jobs=1, use_cache=False,
                               max_pending=1) as service:
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            wait_for_running(service, running)
            service.submit(*QUICK_POINT, ROWS)
            with pytest.raises(ServiceOverloadError):
                service.submit(*QUICK_POINT, ROWS, seed=7, block=True,
                               block_timeout=0.2)
            service.cancel(running)

    def test_cache_hit_bypasses_admission(self, tmp_path):
        with SimulationService(jobs=1, cache_dir=tmp_path / "c",
                               max_pending=1) as service:
            warm = service.wait([service.submit(*QUICK_POINT, ROWS)],
                                timeout=120)[0]
            assert warm.state is JobState.DONE
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            wait_for_running(service, running)
            service.submit(*QUICK_POINT, ROWS, seed=7)  # queue now full
            # a warm point still answers instantly under overload
            hit = service.wait([service.submit(*QUICK_POINT, ROWS)],
                               timeout=30)[0]
            assert hit.cached is True
            assert hit.state is JobState.DONE
            service.cancel(running)


class TestBackoff:
    def test_delay_doubles_and_jitters_deterministically(self):
        assert backoff_delay(1, "k") == backoff_delay(1, "k")
        assert backoff_delay(1, "k") != backoff_delay(1, "other")
        assert backoff_delay(1, "k") != backoff_delay(2, "k")
        for attempt in (1, 2, 3, 4):
            delay = backoff_delay(attempt, "k", base=0.1, cap=100.0)
            nominal = 0.1 * 2 ** (attempt - 1)
            assert nominal * 0.5 <= delay < nominal  # jitter in [0.5, 1.0)
        assert backoff_delay(12, "k", base=1.0, cap=2.0) <= 2.0  # capped

    def test_retry_is_delayed_and_the_delay_is_logged(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            record = wait_for_running(service, ticket)
            os.kill(record.worker_pid, signal.SIGKILL)
            done = service.wait([ticket], timeout=180)[0]
        assert done.state is JobState.DONE
        assert done.attempts == 2
        entry = done.attempt_log[0]
        assert entry["kind"] == "crash"
        # the backoff before attempt 2 is surfaced, positive, and exactly
        # the deterministic schedule for this point key
        assert entry["retry_in"] == backoff_delay(1, ticket.key)
        assert entry["retry_in"] > 0


class TestDeadlines:
    DEADLINE_ROWS = 262_144  # first pass boundary lands ~1s into the run

    def test_queued_job_past_deadline_expires_without_running(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            wait_for_running(service, running)
            doomed = service.submit(*QUICK_POINT, ROWS, deadline=0.05)
            record = service.wait([doomed], timeout=30)[0]
            assert record.state is JobState.EXPIRED
            assert record.attempts == 0  # never reached a worker
            assert "queued" in record.error
            assert service.expired_jobs == 1
            service.cancel(running)

    def test_running_job_checkpoint_stops_at_deadline_then_resumes(
        self, tmp_path
    ):
        reference = run_scan(*SLOW_POINT, rows=self.DEADLINE_ROWS,
                             seed=1994).to_dict()
        with SimulationService(
            jobs=1, use_cache=False, checkpoint_dir=tmp_path / "ckpt",
            deadline_grace=60.0,
        ) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1],
                                    self.DEADLINE_ROWS, deadline=0.6)
            record = service.wait([ticket], timeout=120)[0]
            assert record.state is JobState.EXPIRED
            assert record.attempt_log[-1]["kind"] == "expired"
            assert "checkpoint-stopped" in record.error
            # the deadline bounded the attempt, not the progress: a
            # resubmission resumes from the snapshot, bit-identically
            again = service.submit(SLOW_POINT[0], SLOW_POINT[1],
                                   self.DEADLINE_ROWS)
            done = service.wait([again], timeout=180)[0]
            assert done.state is JobState.DONE
            assert done.resumed_from_pass is not None
            assert done.result.to_dict() == reference


class TestDrain:
    def test_drain_checkpoints_running_drains_queued_and_resumes(
        self, tmp_path
    ):
        reference = run_scan(*SLOW_POINT, rows=SLOW_ROWS, seed=1994).to_dict()
        with SimulationService(
            jobs=1, use_cache=False, checkpoint_dir=tmp_path / "ckpt",
            drain_grace=60.0,
        ) as service:
            running = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            queued = service.submit(*QUICK_POINT, ROWS)
            wait_for_running(service, running)
            summary = service.drain()
            assert service.draining
            assert summary["drained"] == 2
            assert summary["killed"] == 0  # voluntary stop within grace
            assert service.status(queued).state is JobState.DRAINED
            stopped = service.status(running)
            assert stopped.state is JobState.DRAINED
            assert "checkpoint-stopped" in stopped.error
            with pytest.raises(ServiceDrainingError):
                service.submit(*QUICK_POINT, ROWS, seed=7)
            service.close()
        # a successor service resumes the drained point from its snapshot
        with SimulationService(
            jobs=1, use_cache=False, checkpoint_dir=tmp_path / "ckpt",
        ) as successor:
            done = successor.wait(
                [successor.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)],
                timeout=180,
            )[0]
            assert done.state is JobState.DONE
            assert done.resumed_from_pass is not None
            assert successor.resumed_jobs == 1
            assert done.result.to_dict() == reference

    def test_close_drain_true_is_the_sigterm_story(self, tmp_path):
        service = SimulationService(jobs=1, use_cache=False,
                                    checkpoint_dir=tmp_path / "ckpt",
                                    drain_grace=60.0)
        ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
        wait_for_running(service, ticket)
        service.close(drain=True)
        assert service.status(ticket).state is JobState.DRAINED
        assert service.drained_jobs == 1

    def test_stray_worker_sigterm_checkpoints_and_requeues(self, tmp_path):
        # SIGTERM to a *worker* (not a service drain) must not lose the
        # job: the handler only raises a flag, any in-flight checkpoint
        # write completes untorn, the point checkpoint-stops at its next
        # boundary and a fresh worker resumes it — without consuming the
        # crash-retry budget (retries=0 here).
        reference = run_scan(*SLOW_POINT, rows=SLOW_ROWS, seed=1994).to_dict()
        with SimulationService(
            jobs=1, use_cache=False, retries=0,
            checkpoint_dir=tmp_path / "ckpt",
        ) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS)
            record = wait_for_running(service, ticket)
            os.kill(record.worker_pid, signal.SIGTERM)
            done = service.wait([ticket], timeout=180)[0]
            assert done.state is JobState.DONE
            assert done.recycles == 1
            assert done.attempt_log[0]["kind"] == "drained"
            assert done.resumed_from_pass is not None
            assert done.result.to_dict() == reference


class TestResourceGovernance:
    def test_cancel_midrun_releases_admission_and_image_refs(self):
        with SimulationService(jobs=2, use_cache=False) as service:
            ticket = service.submit(SLOW_POINT[0], SLOW_POINT[1], SLOW_ROWS,
                                    client="c")
            wait_for_running(service, ticket)
            with service._cv:
                assert [e.refs for e in service._images.values()] == [1]
            service.cancel(ticket)
            with service._cv:
                assert [e.refs for e in service._images.values()] == [0]
            assert service.admission.outstanding_by_client == {}
            # the service keeps serving and the idle image stays reusable
            after = service.wait([service.submit(*QUICK_POINT, ROWS)],
                                 timeout=120)[0]
            assert after.state is JobState.DONE

    def test_shm_budget_unpublishes_idle_images_lru(self):
        # 0.01 MB is below one image: the budget is always exceeded, so
        # each new publish evicts the *idle* predecessor — and never a
        # referenced image (the publish that exceeds it still succeeds).
        with SimulationService(jobs=1, use_cache=False,
                               shm_max_mb=0.01) as service:
            first = service.wait([service.submit(*QUICK_POINT, 2048)],
                                 timeout=120)[0]
            assert first.state is JobState.DONE
            assert service.datasets_published == 1
            assert service.datasets_unpublished == 0  # referenced, kept
            second = service.wait([service.submit(*QUICK_POINT, 4096)],
                                  timeout=120)[0]
            assert second.state is JobState.DONE
            assert service.datasets_published == 2
            assert service.datasets_unpublished == 1  # idle LRU evicted
            with service._cv:
                assert len(service._images) == 1

    def test_healthz_snapshot_shape(self):
        with SimulationService(jobs=1, use_cache=False) as service:
            service.wait([service.submit(*QUICK_POINT, ROWS)], timeout=120)
            snapshot = service.healthz()
        assert snapshot["status"] == "ok"
        assert snapshot["jobs"]["done"] == 1
        assert snapshot["workers"]["max"] == 1
        assert "max_pending" in snapshot["admission"]
        assert snapshot["shm"]["images"] >= 1
        assert snapshot["counters"]["drained_jobs"] == 0


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        service = SimulationService(jobs=1, use_cache=False)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)

    def test_close_is_idempotent_and_unlinks_images(self):
        service = SimulationService(jobs=1, use_cache=False)
        ticket = service.submit("hive", ScanConfig("dsm", "column", 256), ROWS)
        service.wait([ticket], timeout=60)
        names = [
            entry.image._shm.name for entry in service._images.values()
        ]
        service.close()
        service.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                from multiprocessing import shared_memory

                shared_memory.SharedMemory(name=name)

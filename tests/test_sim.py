"""Unit tests for the ``repro.sim`` layer: machine assembly, the scan
runner across all four codegens, result serialisation, and functional
mask verification against the numpy reference."""

import numpy as np
import pytest

from repro.codegen.base import ScanConfig
from repro.common.config import ARCHITECTURES, machine_for, paper_config
from repro.db.datagen import generate_lineitem
from repro.db.query6 import reference_mask
from repro.sim.machine import build_machine
from repro.sim.results import ExperimentResult, RunResult
from repro.sim.runner import build_workload, run_scan

ROWS = 256  # tiny: these are unit tests, the benches own the full shapes


@pytest.fixture(scope="module")
def data():
    return generate_lineitem(ROWS, seed=1994)


class TestBuildMachine:
    def test_x86_has_no_pim_parts(self):
        machine = build_machine("x86")
        assert machine.arch == "x86"
        assert machine.backend is None
        assert machine.engine is None

    def test_hmc_has_backend_but_no_engine(self):
        machine = build_machine("hmc")
        assert machine.backend is not None
        assert machine.engine is None
        assert machine.backend.max_outstanding == machine.config.hmc.isa_window

    @pytest.mark.parametrize("arch", ["hive", "hipe"])
    def test_logic_layer_archs_have_engine(self, arch):
        machine = build_machine(arch)
        assert machine.backend is not None
        assert machine.engine is not None
        assert machine.config.pim is not None
        assert machine.config.pim.predication == (arch == "hipe")

    def test_every_arch_shares_one_stats_tree(self):
        for arch in ARCHITECTURES:
            machine = build_machine(arch)
            assert machine.stats.name == arch
            assert machine.core is not None
            assert machine.image.capacity == machine.config.hmc.total_size_bytes

    def test_unknown_arch_raises(self):
        with pytest.raises(ValueError):
            build_machine("sparc")

    def test_paper_scale_uses_table1_caches(self):
        machine = build_machine("x86", scale=1)
        assert machine.config.l3.size_bytes == paper_config().l3.size_bytes

    def test_explicit_config_is_respected(self):
        config = machine_for("hive")
        machine = build_machine("hive", config=config)
        assert machine.config is config


class TestRunScanSmoke:
    """Every codegen completes at tiny row counts and reports sane numbers."""

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_column_mode(self, data, arch):
        result = run_scan(arch, ScanConfig("dsm", "column", 64, unroll=2),
                          rows=ROWS, data=data)
        assert result.cycles > 0
        assert result.uops > 0
        assert result.rows == ROWS
        assert result.verified in (None, True)
        assert result.energy.dram_total_pj > 0

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_tuple_mode(self, data, arch):
        result = run_scan(arch, ScanConfig("nsm", "tuple", 64), rows=ROWS,
                          data=data)
        assert result.cycles > 0
        assert result.verified in (None, True)

    def test_generates_data_when_not_given(self):
        result = run_scan("x86", ScanConfig("dsm", "column", 64), rows=ROWS)
        assert result.rows == ROWS

    def test_unknown_arch_raises(self):
        with pytest.raises(ValueError):
            run_scan("vax", ScanConfig("dsm", "column", 64), rows=ROWS)


class TestRunResultSerialisation:
    def test_round_trip_preserves_everything(self, data):
        original = run_scan("hipe", ScanConfig("dsm", "column", 256, unroll=4),
                            rows=ROWS, data=data)
        restored = RunResult.from_dict(original.to_dict())
        assert restored.arch == original.arch
        assert restored.scan == original.scan
        assert restored.rows == original.rows
        assert restored.cycles == original.cycles
        assert restored.uops == original.uops
        assert restored.verified == original.verified
        assert restored.stats == original.stats
        assert restored.energy.to_dict() == original.energy.to_dict()
        assert restored.label() == original.label()

    def test_round_trip_survives_json(self, data):
        import json

        original = run_scan("hmc", ScanConfig("dsm", "column", 64), rows=ROWS,
                            data=data)
        wire = json.dumps(original.to_dict())
        restored = RunResult.from_dict(json.loads(wire))
        assert restored.cycles == original.cycles
        assert restored.energy.dram_total_pj == pytest.approx(
            original.energy.dram_total_pj)

    def test_scan_config_round_trip_validates(self):
        config = ScanConfig("nsm", "tuple", 128, unroll=8)
        assert ScanConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError):
            ScanConfig.from_dict({"layout": "bad", "strategy": "tuple",
                                  "op_bytes": 64, "unroll": 1})

    def test_experiment_result_lookup_still_works(self, data):
        run = run_scan("hive", ScanConfig("dsm", "column", 256), rows=ROWS,
                       data=data)
        outcome = ExperimentResult(name="demo", runs=[run])
        assert outcome.run_for("hive", 256) is run
        assert "HIVE-256B" in outcome.by_label()


class TestMaskVerification:
    """The in-memory engines must produce the exact reference bitmask."""

    @pytest.mark.parametrize("arch", ["hive", "hipe"])
    def test_engine_bitmask_matches_reference(self, data, arch):
        machine = build_machine(arch)
        workload = build_workload(machine, data, "dsm")
        from repro.sim.runner import _CODEGENS

        machine.run(_CODEGENS[arch].generate(
            workload, ScanConfig("dsm", "column", 256, unroll=8)))
        expected = np.packbits(reference_mask(data), bitorder="little")
        produced = machine.image.read(workload.buffers.bitmask_base,
                                      expected.size)
        assert np.array_equal(produced, expected)

    def test_runner_flags_verification(self, data):
        result = run_scan("hive", ScanConfig("dsm", "column", 256, unroll=8),
                          rows=ROWS, data=data)
        assert result.verified is True

    def test_hmc_chunk_masks_verify(self, data):
        result = run_scan("hmc", ScanConfig("dsm", "column", 64, unroll=2),
                          rows=ROWS, data=data)
        assert result.verified is True

    def test_workload_reference_matches_query6(self, data):
        machine = build_machine("x86")
        workload = build_workload(machine, data, "dsm")
        assert np.array_equal(workload.final_mask, reference_mask(data))

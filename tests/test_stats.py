"""Unit tests for the statistics registry."""

from repro.common.stats import StatGroup, ratio


class TestStatGroup:
    def test_bump_and_get(self):
        group = StatGroup("g")
        group.bump("hits")
        group.bump("hits", 4)
        assert group.get("hits") == 5
        assert group.get("absent") == 0
        assert group.get("absent", 7) == 7

    def test_set_overwrites(self):
        group = StatGroup("g")
        group.bump("x", 3)
        group.set("x", 10)
        assert group.get("x") == 10

    def test_contains(self):
        group = StatGroup("g")
        group.bump("a")
        assert "a" in group
        assert "b" not in group

    def test_children_are_cached(self):
        group = StatGroup("top")
        child = group.child("sub")
        assert group.child("sub") is child
        assert list(group.children()) == [child]

    def test_derived_metric(self):
        group = StatGroup("cache")
        group.bump("hits", 3)
        group.bump("accesses", 4)
        group.derive("hit_ratio", ratio("hits", "accesses"))
        assert group.get("hit_ratio") == 0.75
        assert "hit_ratio" in group

    def test_ratio_zero_denominator(self):
        group = StatGroup("g")
        group.derive("r", ratio("a", "b"))
        assert group.get("r") == 0.0

    def test_merge_accumulates_recursively(self):
        a = StatGroup("a")
        a.bump("n", 1)
        a.child("x").bump("m", 2)
        b = StatGroup("b")
        b.bump("n", 10)
        b.child("x").bump("m", 20)
        a.merge(b)
        assert a.get("n") == 11
        assert a.child("x").get("m") == 22

    def test_flatten_paths(self):
        group = StatGroup("top")
        group.bump("a", 1)
        group.child("sub").bump("b", 2)
        flat = group.flatten()
        assert flat["top.a"] == 1
        assert flat["top.sub.b"] == 2

    def test_report_renders(self):
        group = StatGroup("g")
        group.bump("events", 12345)
        text = group.report()
        assert "12,345" in text

    def test_report_empty(self):
        assert "(no events)" in StatGroup("empty").report()

    def test_rows_sorted(self):
        group = StatGroup("g")
        group.bump("zz")
        group.bump("aa")
        names = [name for name, __ in group.rows()]
        assert names == sorted(names)

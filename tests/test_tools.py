"""Smoke tests for the ``tools/`` command-line entry points.

Each CLI runs as a subprocess on a tiny point — the goal is catching
import errors, argv drift and crashed pipelines, not re-verifying the
models (unit tests own that).  Keep the points small: the whole module
should stay in the fast tier.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"


def run_tool(*argv, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE"] = "0"  # tools must not need (or pollute) a cache
    return subprocess.run(
        [sys.executable, *argv], cwd=REPO, env=env, timeout=timeout,
        capture_output=True, text=True,
    )


def test_diag_replay_smoke():
    proc = run_tool(TOOLS / "diag_replay.py", "hive", "256", "65536", "mini")
    assert proc.returncode == 0, proc.stderr
    assert "ReplayStats" in proc.stdout


def test_profile_scan_smoke():
    proc = run_tool(TOOLS / "profile_scan.py", "hive", "--op", "256",
                    "--rows", "2048", "--top", "5")
    assert proc.returncode == 0, proc.stderr
    assert "cycles" in proc.stdout
    assert "cumtime" in proc.stdout  # the cProfile table printed


def test_profile_scan_no_profile_smoke():
    proc = run_tool(TOOLS / "profile_scan.py", "hmc", "--rows", "2048",
                    "--no-profile")
    assert proc.returncode == 0, proc.stderr
    assert "cycles" in proc.stdout


def test_check_kernel_identity_smoke():
    proc = run_tool(TOOLS / "check_kernel_identity.py", "1024")
    assert proc.returncode == 0, proc.stderr
    assert "identical" in proc.stdout.lower()


def test_service_cli_smoke():
    proc = run_tool(TOOLS / "service_cli.py", "--archs", "hive,hmc",
                    "--rows", "256", "--jobs", "2", "--no-cache")
    assert proc.returncode == 0, proc.stderr
    assert "submitted #" in proc.stdout
    assert "[2/2]" in proc.stdout  # both points streamed back
    assert "2 done" in proc.stdout


def test_service_cli_status_only_smoke():
    proc = run_tool(TOOLS / "service_cli.py", "--archs", "hive",
                    "--rows", "256", "--status-only", "--no-cache")
    assert proc.returncode == 0, proc.stderr
    assert "status:" in proc.stdout


def test_service_cli_cancel_after_smoke():
    proc = run_tool(TOOLS / "service_cli.py", "--archs", "hive,hmc,hipe",
                    "--rows", "256", "--jobs", "1", "--no-cache",
                    "--cancel-after", "1")
    assert proc.returncode == 0, proc.stderr
    assert "[1/3]" in proc.stdout

"""Unit tests for clock-domain and size arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.units import (
    CORE_CLOCK,
    DRAM_CLOCK,
    LINK_CLOCK,
    PIM_CLOCK,
    ClockDomain,
    align_down,
    align_up,
    ceil_div,
    dram_cycles_to_core,
    format_bytes,
    format_cycles,
    format_seconds,
    is_power_of_two,
    link_cycles_to_core,
    log2_exact,
    pim_cycles_to_core,
)


class TestClockDomain:
    def test_reference_frequencies(self):
        assert CORE_CLOCK.frequency_hz == 2.0e9
        assert DRAM_CLOCK.frequency_hz == 166e6
        assert PIM_CLOCK.frequency_hz == 1.0e9
        assert LINK_CLOCK.frequency_hz == 8.0e9

    def test_period(self):
        assert CORE_CLOCK.period_s == pytest.approx(0.5e-9)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0.0)

    def test_cycles_to_seconds_roundtrip(self):
        seconds = CORE_CLOCK.cycles_to_seconds(2_000_000_000)
        assert seconds == pytest.approx(1.0)
        assert CORE_CLOCK.seconds_to_cycles(1.0) == 2_000_000_000

    def test_cross_domain_rounds_up(self):
        # 1 DRAM cycle at 166 MHz is ~12.05 core cycles -> 13.
        assert DRAM_CLOCK.to_cycles_of(1, CORE_CLOCK) == 13

    def test_pim_cycles_to_core(self):
        # 1 GHz -> 2 GHz is exactly 2 core cycles per PIM cycle.
        assert pim_cycles_to_core(1) == 2
        assert pim_cycles_to_core(10) == 20

    def test_link_cycles_to_core(self):
        # 8 GHz link: 4 link cycles = 1 core cycle.
        assert link_cycles_to_core(4) == 1

    def test_dram_cycles_to_core_monotone(self):
        values = [dram_cycles_to_core(c) for c in range(1, 30)]
        assert values == sorted(values)


class TestIntegerHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(256)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(4096) == 12
        with pytest.raises(ValueError):
            log2_exact(6)

    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(8, 2) == 4
        assert ceil_div(0, 5) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_align(self):
        assert align_down(1000, 256) == 768
        assert align_up(1000, 256) == 1024
        assert align_up(1024, 256) == 1024
        with pytest.raises(ValueError):
            align_up(10, 3)

    @given(st.integers(min_value=0, max_value=2**40),
           st.sampled_from([1, 2, 64, 256, 4096]))
    def test_align_properties(self, value, alignment):
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(40 * 1024 * 1024) == "40.0 MiB"
        assert "GiB" in format_bytes(8 * 1024**3)

    def test_format_cycles(self):
        assert format_cycles(1234567) == "1,234,567 cyc"

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(2.5e-3) == "2.500 ms"
        assert format_seconds(2.5e-6) == "2.500 us"
        assert "ns" in format_seconds(3e-9)

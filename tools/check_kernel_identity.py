#!/usr/bin/env python
"""Cross-check run-compiled kernels against the uncompiled uop path.

Runs the Q6 column scan on every architecture twice — once with run
compilation enabled (the default) and once with ``REPRO_KERNEL=0`` — on
both the replay path and the ``REPRO_EXACT=1`` slow path, and asserts
cycles, uops, statistics and energy are bit-identical.  This is the CI
smoke that keeps :mod:`repro.cpu.kernel` honest: the generated kernels
transcribe :meth:`CoreExecution.process`, and any divergence between
the two paths is a compiler bug, never a model change.

Usage::

    PYTHONPATH=src python tools/check_kernel_identity.py [rows]
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

ARCHS = [("x86", 64), ("x86", 16), ("hmc", 256), ("hive", 256), ("hipe", 256)]


def fingerprint(result) -> dict:
    return {
        "cycles": result.cycles,
        "uops": result.uops,
        "verified": result.verified,
        "stats": result.stats,
        "energy": result.energy.to_dict(),
    }


def run_point(arch: str, op: int, rows: int, kernel: bool, exact: bool) -> dict:
    os.environ["REPRO_KERNEL"] = "1" if kernel else "0"
    from repro.codegen.base import ScanConfig
    from repro.sim.runner import run_scan

    result = run_scan(arch, ScanConfig("dsm", "column", op, 1), rows=rows,
                      exact=exact)
    return fingerprint(result)


def main() -> int:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 32_768
    os.environ["REPRO_CACHE"] = "0"
    failures = 0
    for arch, op in ARCHS:
        for exact in (False, True):
            compiled = run_point(arch, op, rows, kernel=True, exact=exact)
            uncompiled = run_point(arch, op, rows, kernel=False, exact=exact)
            label = f"{arch}-{op}B rows={rows} exact={exact}"
            if compiled == uncompiled:
                print(f"  OK   {label}: cycles={compiled['cycles']:,} "
                      f"uops={compiled['uops']:,}")
            else:
                failures += 1
                print(f"  FAIL {label}: kernel and uncompiled paths differ")
                for key in compiled:
                    if compiled[key] != uncompiled[key]:
                        print(f"       {key}: {str(compiled[key])[:120]} != "
                              f"{str(uncompiled[key])[:120]}")
    if failures:
        print(f"{failures} point(s) diverged")
        return 1
    # Code-object economics: shape-varying literals are interned, so a
    # multi-arch sweep must find at least one same-structure shape (or a
    # re-simulated workload) sharing a cached code object.
    from repro.cpu.kernel import code_cache_stats

    cache = code_cache_stats()
    print(f"code objects: {cache['compiled']} compiled, "
          f"{cache['shared']} shared")
    if cache["compiled"] > 0 and cache["shared"] == 0:
        print("FAIL: no code-object sharing across the sweep — literal "
              "interning has regressed to one compile per shape")
        return 1
    print("kernel path is bit-identical to the uncompiled path on all points")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

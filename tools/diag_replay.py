"""Diagnose why the replay probe refuses a workload.

Runs one (arch, config, rows) point with an instrumented probe that
reports which signature parts differ at each failed boundary comparison.
Usage: PYTHONPATH=src python tools/diag_replay.py hmc 256 2097152
"""

from __future__ import annotations

import math
import sys

from repro.codegen.base import ScanConfig
from repro.db.query6 import q6_select_plan
from repro.db.datagen import generate_table
from repro.sim.machine import build_machine
from repro.sim import replay
from repro.sim.replay import ReplayExecutor, _AddressMap
from repro.sim.runner import build_workload, _CODEGENS

PART_NAMES = [
    "slotted(core+ports)", "occupancy", "rr_pools(fu/lanes)",
    "addr_pools(cmd/fu/bus/banks)",
    "core clocks(fetch_floor/brwm/pim)", "rob", "regs", "store_fwd",
    "predictor",
    "l1 tags", "l1 mshr", "l1 pref",
    "l2 tags", "l2 mshr", "l2 pref",
    "l3 tags", "l3 mshr", "l3 pref",
    "engine",
]


def diff_parts(sig1, sig2, label):
    bad = []
    for i, (a, b) in enumerate(zip(sig1, sig2)):
        if a != b:
            name = PART_NAMES[i] if i < len(PART_NAMES) else f"part{i}"
            bad.append((i, name))
    print(f"  {label}: {len(bad)} differing parts: {[n for _, n in bad]}")
    for i, name in bad[:4]:
        a, b = sig1[i], sig2[i]
        try:
            sa, sb = set(a), set(b)
            only_a = sorted(sa - sb)
            only_b = sorted(sb - sa)
            print(f"    [{name}] only-A({len(only_a)}): {repr(only_a)[:260]}")
            print(f"    [{name}] only-B({len(only_b)}): {repr(only_b)[:260]}")
            if not only_a and not only_b:
                print(f"    [{name}] same multiset, order differs")
                for k, (x, y) in enumerate(zip(a, b)):
                    if x != y:
                        print(f"      first order diff at {k}: {repr(x)[:120]} vs {repr(y)[:120]}")
                        break
        except TypeError:
            print(f"    [{name}] A={repr(a)[:260]}")
            print(f"    [{name}] B={repr(b)[:260]}")


class DiagExecutor(ReplayExecutor):
    def _probe_and_skip(self, run, j, p):
        state = self.state
        execution = self.execution
        one = self._region_deltas(run, 1, p)
        if one is None:
            scale = 1
            for region in run.regions:
                d = (region.stride * p).denominator
                if d > 1:
                    scale = scale * d // math.gcd(scale, d)
            p *= scale
            if run.count - j < 3 * p:
                print(f"probe @j={j}: scaled p={p} doesn't fit")
                return 0, False
            one = self._region_deltas(run, 1, p)
        print(f"probe @j={j} p={p} (run key={run.key[:4] if run.key else None} "
              f"count={run.count})")
        state.fixed_regs = run.fixed_regs
        base_phase = (j * run.regs_per_iter) % replay.REG_WINDOW
        state.refresh_stats()
        keys0 = state.stat_keys()
        raw0 = state.raw_snapshot()
        cnt0 = state.counter_vector()
        rot0 = state.rotation_vector()
        now0 = execution.last_commit
        for k in range(p):
            self._simulate_iteration(run, j + k)
        state.reg_phase = (base_phase + p * run.regs_per_iter) % replay.REG_WINDOW
        amap1 = _AddressMap(run.regions, list(one))
        state.refresh_stats()
        if state.stat_keys() != keys0:
            print("  new stat keys appeared")
            return p, False
        raw1 = state.raw_snapshot()
        sig1 = state.signature(amap1, raw0)
        cnt1 = state.counter_vector()
        rot1 = state.rotation_vector()
        now1 = execution.last_commit
        for k in range(p):
            self._simulate_iteration(run, j + p + k)
        state.reg_phase = (base_phase + 2 * p * run.regs_per_iter) % replay.REG_WINDOW
        amap2 = _AddressMap(run.regions, [2 * d for d in one])
        state.refresh_stats()
        if state.stat_keys() != keys0:
            print("  new stat keys (2nd)")
            return 2 * p, False
        sig2 = state.signature(amap2, raw1)
        cnt2 = state.counter_vector()
        rot2 = state.rotation_vector()
        now2 = execution.last_commit
        dt1, dt2 = now1 - now0, now2 - now1
        if sig2 != sig1:
            diff_parts(sig1, sig2, "sig1 vs sig2")
            return 2 * p, False
        if dt1 != dt2:
            print(f"  dt mismatch {dt1} vs {dt2}")
            return 2 * p, False
        da = [b - a for a, b in zip(cnt0, cnt1)]
        db = [b - a for a, b in zip(cnt1, cnt2)]
        if da != db:
            idx = [i for i, (x, y) in enumerate(zip(da, db)) if x != y]
            print(f"  counter delta mismatch at {idx[:10]}")
            return 2 * p, False
        ra = [b - a for a, b in zip(rot0, rot1)]
        rb = [b - a for a, b in zip(rot1, rot2)]
        if ra != rb:
            print(f"  rotation delta mismatch {ra} vs {rb}")
            return 2 * p, False
        periods = (run.count - (j + 2 * p)) // p
        total = self._region_deltas(run, periods, p)
        amap_skip = _AddressMap(run.regions, total)
        if state.plan_tag_relabel(amap_skip) is None:
            print("  tag relabel refused (ambiguous merge)")
        if state.plan_pool_relabel(amap_skip) is None:
            print("  pool relabel refused (vault-space collision)")
        if state.plan_prefetcher_relabel(amap_skip, raw1) is None:
            print("  prefetcher relabel refused (key collision)")
        print(f"  sigs MATCH at j={j} p={p}, dt={dt1} "
              f"(diag mode: not extrapolating)")
        return 2 * p, False


def main():
    arch = sys.argv[1] if len(sys.argv) > 1 else "hmc"
    op = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    rows = int(sys.argv[3]) if len(sys.argv) > 3 else 2_097_152
    config = None
    if len(sys.argv) > 4 and sys.argv[4] == "mini":
        from repro.common.config import reduced_cube_config
        config = reduced_cube_config(arch)
    plan = q6_select_plan()
    data = generate_table(plan.table, rows, 1994)
    machine = build_machine(arch, config=config)
    workload = build_workload(machine, data, "dsm", plan=plan)
    runs = _CODEGENS[arch].generate_plan_runs(
        workload, ScanConfig("dsm", "column", op, 1))
    execution = machine.core.execution()
    executor = DiagExecutor(machine, execution)
    executor.consume(runs)
    print(executor.stats)


if __name__ == "__main__":
    main()

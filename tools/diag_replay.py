"""Diagnose why the replay probe refuses a workload.

Runs one (arch, config, rows) point with an instrumented probe that
reports which signature parts differ at each failed boundary comparison.
Usage: PYTHONPATH=src python tools/diag_replay.py hmc 256 2097152

Extra argv flags (any order, after the three positionals):

* ``mini``   — use the reduced-cube machine config,
* ``frag``   — diagnose the *fragment* engine instead of the periodic
  probe: reports which boundary (and which signature part) broke
  stitching, and prints the flag-word reuse histogram per pass family,
* ``cyclic`` — tile a small table periodically so fragment boundary
  states actually recur (the engagement regime; random data mostly
  yields first-seen flag words, i.e. honest refusal).
"""

from __future__ import annotations

import math
import sys
from collections import Counter

from repro.codegen.base import ScanConfig
from repro.db.query6 import q6_select_plan
from repro.db.datagen import TableData, generate_table
from repro.sim.machine import build_machine
from repro.sim import replay
from repro.sim.replay import ReplayExecutor, _AddressMap
from repro.sim.runner import build_workload, _CODEGENS

PART_NAMES = [
    "slotted(core+ports)", "occupancy", "rr_pools(fu/lanes)",
    "addr_pools(cmd/fu/bus/banks)",
    "core clocks(fetch_floor/brwm/pim)", "rob", "regs", "store_fwd",
    "predictor",
    "l1 tags", "l1 mshr", "l1 pref",
    "l2 tags", "l2 mshr", "l2 pref",
    "l3 tags", "l3 mshr", "l3 pref",
    "engine",
]


def diff_parts(sig1, sig2, label):
    bad = []
    for i, (a, b) in enumerate(zip(sig1, sig2)):
        if a != b:
            name = PART_NAMES[i] if i < len(PART_NAMES) else f"part{i}"
            bad.append((i, name))
    print(f"  {label}: {len(bad)} differing parts: {[n for _, n in bad]}")
    for i, name in bad[:4]:
        a, b = sig1[i], sig2[i]
        try:
            sa, sb = set(a), set(b)
            only_a = sorted(sa - sb)
            only_b = sorted(sb - sa)
            print(f"    [{name}] only-A({len(only_a)}): {repr(only_a)[:260]}")
            print(f"    [{name}] only-B({len(only_b)}): {repr(only_b)[:260]}")
            if not only_a and not only_b:
                print(f"    [{name}] same multiset, order differs")
                for k, (x, y) in enumerate(zip(a, b)):
                    if x != y:
                        print(f"      first order diff at {k}: {repr(x)[:120]} vs {repr(y)[:120]}")
                        break
        except TypeError:
            print(f"    [{name}] A={repr(a)[:260]}")
            print(f"    [{name}] B={repr(b)[:260]}")


class DiagExecutor(ReplayExecutor):
    def _probe_and_skip(self, run, j, p):
        state = self.state
        execution = self.execution
        one = self._region_deltas(run, 1, p)
        if one is None:
            scale = 1
            for region in run.regions:
                d = (region.stride * p).denominator
                if d > 1:
                    scale = scale * d // math.gcd(scale, d)
            p *= scale
            if run.count - j < 3 * p:
                print(f"probe @j={j}: scaled p={p} doesn't fit")
                return 0, False
            one = self._region_deltas(run, 1, p)
        print(f"probe @j={j} p={p} (run key={run.key[:4] if run.key else None} "
              f"count={run.count})")
        state.fixed_regs = run.fixed_regs
        base_phase = (j * run.regs_per_iter) % replay.REG_WINDOW
        state.refresh_stats()
        keys0 = state.stat_keys()
        raw0 = state.raw_snapshot()
        cnt0 = state.counter_vector()
        rot0 = state.rotation_vector()
        now0 = execution.last_commit
        for k in range(p):
            self._simulate_iteration(run, j + k)
        state.reg_phase = (base_phase + p * run.regs_per_iter) % replay.REG_WINDOW
        amap1 = _AddressMap(run.regions, list(one))
        state.refresh_stats()
        if state.stat_keys() != keys0:
            print("  new stat keys appeared")
            return p, False
        raw1 = state.raw_snapshot()
        sig1 = state.signature(amap1, raw0)
        cnt1 = state.counter_vector()
        rot1 = state.rotation_vector()
        now1 = execution.last_commit
        for k in range(p):
            self._simulate_iteration(run, j + p + k)
        state.reg_phase = (base_phase + 2 * p * run.regs_per_iter) % replay.REG_WINDOW
        amap2 = _AddressMap(run.regions, [2 * d for d in one])
        state.refresh_stats()
        if state.stat_keys() != keys0:
            print("  new stat keys (2nd)")
            return 2 * p, False
        sig2 = state.signature(amap2, raw1)
        cnt2 = state.counter_vector()
        rot2 = state.rotation_vector()
        now2 = execution.last_commit
        dt1, dt2 = now1 - now0, now2 - now1
        if sig2 != sig1:
            diff_parts(sig1, sig2, "sig1 vs sig2")
            return 2 * p, False
        if dt1 != dt2:
            print(f"  dt mismatch {dt1} vs {dt2}")
            return 2 * p, False
        da = [b - a for a, b in zip(cnt0, cnt1)]
        db = [b - a for a, b in zip(cnt1, cnt2)]
        if da != db:
            idx = [i for i, (x, y) in enumerate(zip(da, db)) if x != y]
            print(f"  counter delta mismatch at {idx[:10]}")
            return 2 * p, False
        ra = [b - a for a, b in zip(rot0, rot1)]
        rb = [b - a for a, b in zip(rot1, rot2)]
        if ra != rb:
            print(f"  rotation delta mismatch {ra} vs {rb}")
            return 2 * p, False
        periods = (run.count - (j + 2 * p)) // p
        total = self._region_deltas(run, periods, p)
        amap_skip = _AddressMap(run.regions, total)
        if state.plan_tag_relabel(amap_skip) is None:
            print("  tag relabel refused (ambiguous merge)")
        if state.plan_pool_relabel(amap_skip) is None:
            print("  pool relabel refused (vault-space collision)")
        if state.plan_prefetcher_relabel(amap_skip, raw1) is None:
            print("  prefetcher relabel refused (key collision)")
        print(f"  sigs MATCH at j={j} p={p}, dt={dt1} "
              f"(diag mode: not extrapolating)")
        return 2 * p, False


class FragDiagExecutor(ReplayExecutor):
    """Fragment-engine diagnosis: why did a fragment fail to stitch?

    Keeps the *unhashed* boundary signature next to each hashed one so
    a novel entry state can be diffed part-by-part against the known
    entry state of the same (flag word, count) descriptor — pointing at
    the machine structure (prefetcher table, tag conveyor, predictor,
    ...) whose state refuses to recur.  Also histograms flag-word reuse
    per pass family: stitching can only ever engage on descriptors that
    repeat, so a flat histogram *is* the refusal explanation.
    """

    MAX_REPORTS = 12

    def __init__(self, machine, execution) -> None:
        super().__init__(machine, execution)
        self._flag_hist: dict = {}   # family key -> Counter((flag, count))
        self._sig_parts: dict = {}   # sig hash -> (phases, signature tuple)
        self._reports = 0

    def _boundary_probe(self, family, run):
        prev_raw = self._prev_raw
        sig, scalars = super()._boundary_probe(family, run)
        if sig not in self._sig_parts and len(self._sig_parts) < 8192:
            # Recompute the signature unhashed (state is read-only here;
            # fixed_regs/reg_phase were just set by the parent probe).
            parts = self.state.signature(
                replay.fragment_entry_amap(
                    self._frag_trail, replay.FRAGMENT_TRAIL_PAD, run.regions),
                prev_raw)
            phases = tuple(r.lo % self._dram_span for r in run.regions)
            self._sig_parts[sig] = (phases, parts)
        return sig, scalars

    def _learn_fragment(self, family, run) -> None:
        flag = run.key[len(run.family):] if run.family else run.key
        hist = self._flag_hist.setdefault(run.family, Counter())
        hist[(flag, run.count)] += 1
        desc = (run.key, run.count)
        known_sigs = [s for (d, s) in family.edges if d == desc]
        sigs_before = len(family.seen_sigs)
        was_disabled = family.disabled
        super()._learn_fragment(family, run)
        if family.disabled and not was_disabled:
            print(f"family {run.family}: GAVE UP — honest refusal "
                  f"(sig_seconds={family.sig_seconds:.2f}, "
                  f"novel_streak={family.novel_streak})")
            return
        pending = self._pending_edge
        if pending is None or len(family.seen_sigs) == sigs_before:
            return  # stitched, recurring boundary, or family disabled
        __, d, sig, ___ = pending
        if d != desc or self._reports >= self.MAX_REPORTS:
            return
        self._reports += 1
        at = self.stats.fragments_seen
        if not known_sigs:
            print(f"boundary @fragment {at}: first-seen flag word "
                  f"{repr(flag)[:80]} count={run.count} — nothing memoised "
                  f"for this descriptor yet (learning, not broken)")
            return
        print(f"boundary @fragment {at}: NOVEL entry state for known flag "
              f"word {repr(flag)[:60]} count={run.count} — this broke "
              f"stitching; diffing against the memoised entry state:")
        new, old = self._sig_parts.get(sig), self._sig_parts.get(known_sigs[-1])
        if new is None or old is None:
            print("  (unhashed parts not retained)")
            return
        if new[0] != old[0]:
            print(f"  DRAM interleave phase differs: {old[0]} -> {new[0]}")
        diff_parts(old[1], new[1], "memoised entry vs novel entry")

    def report(self) -> None:
        print()
        print("flag-word reuse per pass family "
              "(stitching needs repeats in BOTH columns):")
        for fam_key, hist in self._flag_hist.items():
            family = self._families.get(fam_key)
            total = sum(hist.values())
            n_sigs = len(family.seen_sigs) if family else 0
            trusted = family.trusted if family else 0
            note = ", DISABLED (honest refusal)" if family and family.disabled else ""
            print(f"family {fam_key}: {total} fragments, {len(hist)} distinct "
                  f"(flag word, count) descriptors, {n_sigs} distinct entry "
                  f"states, {trusted} trusted edges{note}")
            for (flag, count), n in hist.most_common(8):
                print(f"  x{n:<6} count={count:<6} flag={repr(flag)[:90]}")
            if len(hist) > 8:
                print(f"  ... {len(hist) - 8} more descriptors")


def _cyclic_table(plan, rows: int, period: int = 32768, seed: int = 1994):
    """Tile a ``period``-row table to ``rows`` so flag words recur."""
    import numpy as np

    period = min(period, rows)
    reps = max(1, rows // period)
    base = generate_table(plan.table, period, seed)
    columns = {name: np.tile(col, reps) for name, col in base.columns.items()}
    return TableData(rows=period * reps, columns=columns, schema=base.schema)


def main():
    argv = sys.argv[1:]
    flags = {a for a in argv[3:] if a in ("mini", "frag", "cyclic")}
    arch = argv[0] if len(argv) > 0 else "hmc"
    op = int(argv[1]) if len(argv) > 1 else 256
    rows = int(argv[2]) if len(argv) > 2 else 2_097_152
    config = None
    if "mini" in flags:
        from repro.common.config import reduced_cube_config
        config = reduced_cube_config(arch)
    plan = q6_select_plan()
    if "cyclic" in flags:
        data = _cyclic_table(plan, rows)
    else:
        data = generate_table(plan.table, rows, 1994)
    machine = build_machine(arch, config=config)
    workload = build_workload(machine, data, "dsm", plan=plan)
    runs = _CODEGENS[arch].generate_plan_runs(
        workload, ScanConfig("dsm", "column", op, 1))
    execution = machine.core.execution()
    cls = FragDiagExecutor if "frag" in flags else DiagExecutor
    executor = cls(machine, execution)
    executor.consume(runs)
    print(executor.stats)
    if isinstance(executor, FragDiagExecutor):
        executor.report()


if __name__ == "__main__":
    main()

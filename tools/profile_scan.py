#!/usr/bin/env python
"""Profile one simulation point: wall time, uops/sec, hottest functions.

Usage::

    PYTHONPATH=src python tools/profile_scan.py hive --op 256 --rows 32768
    PYTHONPATH=src python tools/profile_scan.py x86 --strategy tuple --exact

The tool is the companion of ``benchmarks/perf_smoke.py``: the smoke
benchmark records the throughput trajectory, this answers *why* a point
is slow by printing the top of the cProfile table.  Compare a point
with and without ``--exact`` to see what the steady-state replay layer
contributes on that workload.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("arch", choices=["x86", "hmc", "hive", "hipe"])
    parser.add_argument("--layout", default=None, choices=["nsm", "dsm"])
    parser.add_argument("--strategy", default="column", choices=["tuple", "column"])
    parser.add_argument("--op", type=int, default=None, help="operation bytes")
    parser.add_argument("--unroll", type=int, default=1)
    parser.add_argument("--rows", type=int, default=32_768)
    parser.add_argument("--exact", action="store_true",
                        help="force the uop-by-uop slow path (REPRO_EXACT)")
    parser.add_argument("--top", type=int, default=20, help="profile rows shown")
    parser.add_argument("--no-profile", action="store_true",
                        help="only time the run (no cProfile overhead)")
    args = parser.parse_args()

    from repro.codegen.base import ScanConfig
    from repro.sim.runner import run_scan

    layout = args.layout or ("dsm" if args.strategy == "column" else "nsm")
    op = args.op or (64 if args.arch == "x86" else 256)
    scan = ScanConfig(layout, args.strategy, op, args.unroll)

    profiler = None if args.no_profile else cProfile.Profile()
    start = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    result = run_scan(args.arch, scan, rows=args.rows, exact=args.exact)
    if profiler is not None:
        profiler.disable()
    elapsed = time.perf_counter() - start

    print(f"{args.arch} {layout}/{args.strategy} {op}B@{args.unroll}x "
          f"rows={args.rows:,} exact={args.exact}")
    print(f"  cycles          {result.cycles:>14,}")
    print(f"  uops            {result.uops:>14,}")
    print(f"  wall time       {elapsed:>14.3f} s")
    print(f"  simulated uops/s{result.uops / elapsed:>14,.0f}")
    if result.verified is not None:
        print(f"  verified        {result.verified!s:>14}")

    if profiler is not None:
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("tottime").print_stats(args.top)
        print()
        print(component_breakdown(stats))
        print()
        print(kernel_breakdown(stats))
        print(stream.getvalue())
    return 0


#: filename fragment -> component label, first match wins.  The
#: run-compiled kernels execute as generated code under the
#: ``<runkernel>`` pseudo-filename (repro.cpu.kernel), so attribution
#: keys on *files*, not function names — renames and generated frames
#: land in the right bucket.
COMPONENTS = [
    ("<runkernel", "core (compiled kernels)"),
    ("cpu/kernel.py", "core (kernel compiler)"),
    ("cpu/", "core (uncompiled path)"),
    ("common/resources.py", "timing resources"),
    ("cache/", "caches"),
    ("memory/", "memory (links/vaults/dram)"),
    ("pim/", "pim engines"),
    ("codegen/", "codegen"),
    ("sim/replay.py", "replay layer"),
    ("sim/", "sim harness"),
    ("db/", "db/datagen"),
    ("energy/", "energy"),
]


def component_breakdown(stats: pstats.Stats) -> str:
    """Per-component self-time percentages of one profile run."""
    totals: dict = {}
    grand = 0.0
    for (filename, __, ___), row in stats.stats.items():  # type: ignore[attr-defined]
        tottime = row[2]
        grand += tottime
        for fragment, label in COMPONENTS:
            if fragment in filename:
                break
        else:
            label = "other (numpy/stdlib)"
        totals[label] = totals.get(label, 0.0) + tottime
    if grand <= 0:
        return "(empty profile)"
    lines = ["per-component self time:"]
    for label, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {label:28s} {seconds:>7.3f}s  {100 * seconds / grand:5.1f}%")
    return "\n".join(lines)


def kernel_breakdown(stats: pstats.Stats) -> str:
    """Per-code-object kernel frames, attributed back to run keys.

    Same-structure shapes share one code object (``repro.cpu.kernel``
    interns shape-varying literals), so a ``<runkernel#N>`` profile row
    can stand for several run shapes; the kernel module's registry says
    which ones.
    """
    from repro.cpu.kernel import code_cache_stats, kernel_code_keys

    key_map = kernel_code_keys()
    merged: dict = {}  # the module-level exec frame merges into _kernel's
    for (filename, __, ___), row in stats.stats.items():  # type: ignore[attr-defined]
        if filename.startswith("<runkernel"):
            calls, seconds = merged.get(filename, (0, 0.0))
            merged[filename] = (calls + row[0], seconds + row[2])
    rows = [(seconds, calls, filename)
            for filename, (calls, seconds) in merged.items()]
    if not rows:
        return "kernel frames: (none — uncompiled path or REPRO_KERNEL=0)"
    cache = code_cache_stats()
    lines = [f"kernel frames by shape key (code objects: "
             f"{cache['compiled']} compiled, {cache['shared']} shared):"]
    for tottime, ncalls, filename in sorted(rows, reverse=True):
        keys = key_map.get(filename, [])
        lines.append(f"  {filename:16s} {tottime:>7.3f}s  {ncalls:>9,} calls"
                     f"  {len(keys)} shape(s)")
        for key in keys[:4]:
            lines.append(f"    {repr(key)[:100]}")
        if len(keys) > 4:
            lines.append(f"    ... {len(keys) - 4} more shapes")
    return "\n".join(lines)


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Submit a simulation sweep to the service and stream its results.

The CLI front end of :mod:`repro.service`: builds an (arch x config)
grid, submits every point to a :class:`~repro.service.SimulationService`
(persistent workers, shared-memory dataset, on-disk result cache shared
with ``ExperimentEngine``), then streams results back in *completion*
order with live progress — fast points print while slow ones still
simulate.  Ctrl-C cancels everything outstanding and reports the
partial sweep.

Usage::

    PYTHONPATH=src python tools/service_cli.py --rows 32768
    PYTHONPATH=src python tools/service_cli.py --archs hive,hipe --op 256 \
        --unroll 8 --rows 262144 --jobs 4
    PYTHONPATH=src python tools/service_cli.py --rows 8192 --cancel-after 2
    PYTHONPATH=src python tools/service_cli.py --status-only --rows 8192
    PYTHONPATH=src python tools/service_cli.py --show-checkpoints

    # serve the HTTP API (SIGTERM = graceful drain)...
    PYTHONPATH=src python tools/service_cli.py --serve 127.0.0.1:8642
    # ...and sweep against it from another shell/host
    PYTHONPATH=src python tools/service_cli.py --http http://127.0.0.1:8642 \
        --rows 32768
    PYTHONPATH=src python tools/service_cli.py --http http://127.0.0.1:8642 \
        --healthz
    PYTHONPATH=src python tools/service_cli.py --http http://127.0.0.1:8642 \
        --drain

``--cancel-after N`` cancels every still-outstanding job after N
completions (exercising the cancellation path); ``--status-only``
submits, prints one status snapshot per second until done, and never
streams — the ticket/status/cancel surface without the iterator.
``--show-checkpoints`` lists the resumable pass-boundary snapshots of
interrupted points (and exits); a streamed result that recovered from a
crash prints ``resumed from pass K``.

``--serve HOST:PORT`` turns this process into a long-lived service
host: one :class:`SimulationService` behind the stdlib HTTP API, with
SIGTERM/SIGINT wired to graceful drain (running jobs checkpoint-stop;
a restarted host resumes them).  ``--http URL`` makes the sweep a
*client* of such a host instead of spawning workers locally —
overload answers (HTTP 429) are retried with the server-suggested
backoff, a draining host (503) aborts with a clear message.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def build_points(args):
    from repro.codegen.base import ScanConfig

    points = []
    for arch in args.archs.split(","):
        arch = arch.strip().lower()
        if not arch:
            continue
        op = args.op or (64 if arch == "x86" else 256)
        points.append((arch, ScanConfig(args.layout, args.strategy, op,
                                        args.unroll)))
    if not points:
        raise SystemExit("no architectures given")
    return points


def show_checkpoints(checkpoint_dir=None) -> int:
    """Print every resumable pass-boundary snapshot in the sidecar."""
    import os

    from repro.sim.checkpoint import DEFAULT_CHECKPOINT_SUBDIR, CheckpointStore
    from repro.sim.engine import DEFAULT_CACHE_DIR

    if checkpoint_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        checkpoint_dir = os.environ.get(
            "REPRO_CHECKPOINT_DIR",
            os.path.join(cache_dir, DEFAULT_CHECKPOINT_SUBDIR),
        )
    store = CheckpointStore(checkpoint_dir)
    entries = store.entries()
    print(f"checkpoint sidecar: {store.directory}")
    if not entries:
        print("no resumable checkpoints (every point either finished or "
              "never reached a pass boundary)")
        return 0
    for entry in entries:
        meta = entry.get("meta") or {}
        age = time.time() - entry.get("saved_at", time.time())
        print(f"  {entry['key'][:16]}…  pass={entry['pass']} "
              f"runs={entry['runs']} "
              f"arch={meta.get('arch', '?')} rows={meta.get('rows', '?')} "
              f"op={meta.get('op_bytes', '?')}B "
              f"{entry['size'] / 1e6:.1f} MB  saved {age:.0f}s ago")
    print(f"{len(entries)} resumable point(s); a resubmitted point resumes "
          f"from its last completed pass")
    return 0


def serve(address: str, args) -> int:
    """Host the HTTP API until SIGTERM/SIGINT drains it."""
    from repro.service import (
        ServiceHTTPServer,
        SimulationService,
        install_drain_handler,
    )

    host, _, port = address.rpartition(":")
    host = host or "127.0.0.1"
    service = SimulationService(
        jobs=args.jobs, use_cache=False if args.no_cache else None,
        retries=args.retries, timeout=args.timeout,
        checkpoint_dir=args.checkpoint_dir,
    )
    server = ServiceHTTPServer((host, int(port)), service)
    install_drain_handler(service, server)
    bound = server.server_address
    print(f"serving on http://{bound[0]}:{bound[1]} "
          f"(workers={service.jobs}; SIGTERM drains gracefully)",
          flush=True)
    try:
        # Serve on the main thread: the drain handler's shutdown()
        # (issued from its helper thread) unblocks this loop.
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close(drain=True, force=True)
        server.server_close()
    print(f"drained: {service.drained_jobs} job(s) checkpoint-stopped")
    return 0


def http_sweep(args) -> int:
    """Run the sweep as a *client* of a remote service host."""
    from repro.service import HTTPServiceError, ServiceClient

    client = ServiceClient(args.http)
    if args.healthz:
        import json

        print(json.dumps(client.healthz(), indent=2))
        return 0
    if args.drain:
        summary = client.drain()
        print(f"drain requested: {summary}")
        return 0

    points = build_points(args)
    start = time.perf_counter()
    job_ids = []
    for arch, scan in points:
        while True:
            try:
                record = client.submit(
                    arch, scan, args.rows, seed=args.seed,
                    client=args.client, job_class=args.job_class,
                    deadline=args.deadline,
                )
            except HTTPServiceError as exc:
                if exc.overloaded:
                    delay = float(exc.payload.get("retry_after", 1.0))
                    print(f"overloaded ({exc.payload.get('reason')}); "
                          f"retrying in {delay:g}s", file=sys.stderr)
                    time.sleep(delay)
                    continue
                if exc.draining:
                    print("service is draining; aborting", file=sys.stderr)
                    return 1
                raise
            job_ids.append(record["id"])
            print(f"submitted #{record['id']} {record['label']} "
                  f"rows={record['rows']}")
            break
    records = client.wait(job_ids, timeout=args.timeout)
    failed = 0
    for n, record in enumerate(records, 1):
        elapsed = time.perf_counter() - start
        detail = ""
        if record["state"] == "done":
            detail = (f"cycles={record['result']['cycles']:,} "
                      f"verified={record['result']['verified']}")
            if record.get("resumed_from_pass") is not None:
                detail += f" resumed from pass {record['resumed_from_pass']}"
        elif record.get("error"):
            detail = record["error"].strip().splitlines()[-1]
            failed += 1
        print(f"[{n}/{len(records)}] {elapsed:7.2f}s {record['label']:<14} "
              f"{record['state']:<9} {detail}")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--archs", default="x86,hmc,hive,hipe",
                        help="comma-separated architectures (default: all four)")
    parser.add_argument("--rows", type=int, default=32_768)
    parser.add_argument("--op", type=int, default=None,
                        help="operation bytes (default: 64 on x86, 256 on PIM)")
    parser.add_argument("--unroll", type=int, default=1)
    parser.add_argument("--layout", default="dsm", choices=["nsm", "dsm"])
    parser.add_argument("--strategy", default="column", choices=["tuple", "column"])
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker slots (default: REPRO_JOBS or CPU count)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-attempt timeout in seconds")
    parser.add_argument("--retries", type=int, default=None,
                        help="retry budget for crashed workers (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cancel-after", type=int, default=None, metavar="N",
                        help="cancel outstanding jobs after N completions")
    parser.add_argument("--status-only", action="store_true",
                        help="poll status snapshots instead of streaming")
    parser.add_argument("--show-checkpoints", action="store_true",
                        help="list resumable pass-boundary checkpoints and exit")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="checkpoint sidecar directory (default: "
                             "<cache dir>/checkpoints or REPRO_CHECKPOINT_DIR)")
    parser.add_argument("--serve", default=None, metavar="HOST:PORT",
                        help="host the HTTP API instead of sweeping "
                             "(SIGTERM drains gracefully)")
    parser.add_argument("--http", default=None, metavar="URL",
                        help="sweep against a remote service host instead "
                             "of spawning local workers")
    parser.add_argument("--healthz", action="store_true",
                        help="with --http: print the health snapshot and exit")
    parser.add_argument("--drain", action="store_true",
                        help="with --http: request a graceful drain and exit")
    parser.add_argument("--client", default="cli",
                        help="admission client identity (default: cli)")
    parser.add_argument("--job-class", default="default",
                        help="admission job class (default: default)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-job deadline in seconds (past it the job "
                             "checkpoint-stops and expires)")
    args = parser.parse_args()

    from repro.service import JobState, SimulationService
    from repro.sim.results import format_table

    if args.show_checkpoints:
        return show_checkpoints(args.checkpoint_dir)
    if args.serve:
        return serve(args.serve, args)
    if args.http:
        return http_sweep(args)

    points = build_points(args)
    service = SimulationService(
        jobs=args.jobs, use_cache=False if args.no_cache else None,
        retries=args.retries, timeout=args.timeout,
        checkpoint_dir=args.checkpoint_dir,
    )
    start = time.perf_counter()
    exit_code = 0
    completed = []
    try:
        tickets = [
            service.submit(arch, scan, args.rows, seed=args.seed)
            for arch, scan in points
        ]
        total = len(tickets)
        for ticket in tickets:
            print(f"submitted #{ticket.id} {ticket.label} rows={ticket.rows}"
                  f"{'' if ticket.key is None else f' key={ticket.key[:12]}'}")

        if args.status_only:
            while True:
                progress = service.progress(tickets)
                outstanding = progress["pending"] + progress["running"]
                print(f"status: {progress}")
                if not outstanding:
                    break
                time.sleep(1.0)
            records = [service.status(t) for t in tickets]
        else:
            records = []
            for record in service.stream(tickets):
                records.append(record)
                elapsed = time.perf_counter() - start
                n = len(records)
                how = ("cache" if record.cached else
                       f"simulated x{record.attempts}")
                detail = ""
                if record.state is JobState.DONE:
                    detail = (f"cycles={record.result.cycles:,} "
                              f"verified={record.result.verified}")
                    if record.resumed_from_pass is not None:
                        detail += (f" resumed from pass "
                                   f"{record.resumed_from_pass}")
                elif record.error:
                    detail = record.error.strip().splitlines()[-1]
                print(f"[{n}/{total}] {elapsed:7.2f}s {record.ticket.label:<14} "
                      f"{record.state.value:<9} ({how}) {detail}")
                if args.cancel_after is not None and n >= args.cancel_after:
                    for other in tickets:
                        service.cancel(other)

        completed = [r for r in records if r.state is JobState.DONE]
        failed = [r for r in records if r.state is JobState.FAILED]
        if failed:
            exit_code = 1
            for record in failed:
                print(f"FAILED {record.ticket.label}: {record.error}",
                      file=sys.stderr)
    except KeyboardInterrupt:
        print("\ninterrupted: cancelling outstanding jobs", file=sys.stderr)
        exit_code = 130
    finally:
        service.close(force=True)

    if completed:
        print()
        print(format_table([r.result for r in completed],
                           f"service sweep ({args.rows:,} rows)"))
    wall = time.perf_counter() - start
    print(f"\n{len(completed)} done, retried {service.retried_jobs}, "
          f"resumed {service.resumed_jobs}, "
          f"cache hits {service.cache_hits}, "
          f"datasets published {service.datasets_published}, "
          f"wall {wall:.2f}s")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
